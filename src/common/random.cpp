#include "common/random.h"

#include <cmath>

namespace poly {

Random::Random(uint64_t seed) {
  // SplitMix64 to derive the two xorshift words from one seed.
  auto splitmix = [](uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  uint64_t x = seed;
  s0_ = splitmix(x);
  s1_ = splitmix(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::Uniform(uint64_t n) { return Next() % n; }

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

double Random::NextDouble() {
  return (Next() >> 11) * (1.0 / 9007199254740992.0);  // 53 random bits
}

double Random::NextGaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return gauss_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double r = std::sqrt(-2.0 * std::log(u1));
  gauss_ = r * std::sin(2.0 * M_PI * u2);
  have_gauss_ = true;
  return r * std::cos(2.0 * M_PI * u2);
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

std::string Random::NextString(size_t len) {
  std::string s(len, 'a');
  for (size_t i = 0; i < len; ++i) s[i] = 'a' + static_cast<char>(Uniform(26));
  return s;
}

Random Random::Fork() { return Random(Next()); }

uint64_t Random::Mix(uint64_t seed, uint64_t salt) {
  uint64_t x = seed + salt * 0x9E3779B97F4A7C15ULL;
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  zetan_ = Zeta(n, theta);
  double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::Zeta(uint64_t n, double theta) const {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

uint64_t ZipfGenerator::Next() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= n_) v = n_ - 1;
  return v;
}

}  // namespace poly
