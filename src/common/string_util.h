#ifndef POLY_COMMON_STRING_UTIL_H_
#define POLY_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace poly {

/// Splits on a single-character delimiter; empty pieces are kept.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Joins with a delimiter.
std::string JoinStrings(const std::vector<std::string>& parts, std::string_view delim);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Removes leading/trailing whitespace.
std::string_view TrimWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// SQL LIKE-style match where '%' matches any run and '_' one char.
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace poly

#endif  // POLY_COMMON_STRING_UTIL_H_
