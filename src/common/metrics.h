#ifndef POLY_COMMON_METRICS_H_
#define POLY_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace poly {
namespace metrics {

/// Observability substrate (DESIGN.md §10): named counters, gauges, and
/// log-scale histograms behind a registry, cheap enough to leave on in the
/// hot paths of the morsel-parallel executor and the SOE fabric. The
/// cluster statistics service (v2stats, Figure 3) and the experiment
/// benches read the same numbers the instrumented code writes, so "what the
/// bench prints" and "what the system reports" can never drift apart.
///
/// Naming scheme: lowercase dotted paths, `<layer>.<object>.<what>`, e.g.
/// `soe.net.dropped`, `storage.scan.hot.rows`, `soe.node.3.busy_nanos`.
/// Counter units go in the trailing segment (`*_nanos`, `*_bytes`).

/// Monotonic counter. The write path is sharded over cache-line-sized slots
/// indexed by a per-thread id, so concurrent `Add`s from pool workers do
/// not contend on one cache line; `Value()` sums the shards (exact, since
/// every write is an atomic add — sharding only spreads contention).
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  static size_t ThisThreadShard();
  Shard shards_[kShards];
};

/// Last-value-wins signed gauge (e.g. resident bytes, live nodes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of a Histogram; also the unit of snapshot reporting.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< meaningful only when count > 0
  uint64_t max = 0;
  /// bucket[i] counts observations with value < 2^i (non-cumulative;
  /// bucket 0 holds the zeros).
  std::vector<uint64_t> buckets;
  /// Standard latency quantiles, precomputed at snapshot time (same
  /// log-scale bound as Quantile(): exact to a factor of 2). 0 when empty.
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;

  double Mean() const { return count ? static_cast<double>(sum) / count : 0.0; }
  /// Upper bound of the bucket containing quantile `q` in [0,1] — a
  /// log-scale estimate, exact to a factor of 2.
  uint64_t Quantile(double q) const;
};

/// Log-scale (power-of-two bucket) histogram for latencies and sizes.
/// `Observe` is three relaxed atomic RMWs plus bounded CAS loops for
/// min/max — no locks, so it is safe (and cheap) under TSan and the
/// thread pool.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  ///< value v lands in bit_width(v)

  void Observe(uint64_t value);
  HistogramSnapshot Snapshot() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Deterministic point-in-time view of a whole registry: names sorted,
/// values summed — two snapshots of a quiesced registry compare equal.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

/// Registry of named metrics. `counter`/`gauge`/`histogram` get-or-create;
/// returned pointers stay valid for the registry's lifetime, so hot paths
/// look a metric up once and keep the pointer. Creation takes a mutex;
/// updates through the returned pointers are lock-free.
class Registry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  RegistrySnapshot TakeSnapshot() const;

  /// Prometheus-style text exposition: one `# TYPE` line per metric, dots
  /// mapped to underscores, histograms as cumulative `_bucket{le=...}` +
  /// `_sum` + `_count` series.
  std::string TextPage() const;

  /// Zeroes every registered metric (bench setup). Not atomic with respect
  /// to concurrent writers; quiesce first.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-wide default registry: the storage, aging, and tiering layers
/// report here (they have no cluster to belong to); `SoeCluster` owns a
/// private registry per cluster instead.
Registry& Default();

/// `prefix + "." + suffix` (the dotted naming scheme helper).
std::string JoinName(const std::string& prefix, const std::string& suffix);

}  // namespace metrics
}  // namespace poly

#endif  // POLY_COMMON_METRICS_H_
