#ifndef POLY_COMMON_RANDOM_H_
#define POLY_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace poly {

/// Deterministic xorshift128+ PRNG. All workload generators take an explicit
/// seed so experiments are reproducible run-to-run.
class Random {
 public:
  explicit Random(uint64_t seed = 42);

  /// Uniform in [0, 2^64).
  uint64_t Next();
  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);
  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Standard normal via Box-Muller.
  double NextGaussian();
  /// True with probability p.
  bool Bernoulli(double p);
  /// Random lowercase ASCII string of length `len`.
  std::string NextString(size_t len);

  /// Derives an independent child stream (seeded from this stream's next
  /// draw). Lets one master seed drive several components — workload,
  /// fault fabric, retry jitter — without their draws interleaving.
  Random Fork();

  /// Stateless SplitMix64 hash of (seed, salt): a stable way to derive
  /// per-component seeds from one master seed.
  static uint64_t Mix(uint64_t seed, uint64_t salt);

 private:
  uint64_t s0_;
  uint64_t s1_;
  bool have_gauss_ = false;
  double gauss_ = 0.0;
};

/// Zipf-distributed generator over [0, n). Used to synthesize the skewed
/// enterprise workloads (hot orders, popular products) the paper's
/// OLTP/OLAP discussion assumes.
class ZipfGenerator {
 public:
  /// theta in (0, 1): 0.99 is the YCSB-style "hot" default.
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  uint64_t Next();
  uint64_t n() const { return n_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Random rng_;
};

}  // namespace poly

#endif  // POLY_COMMON_RANDOM_H_
