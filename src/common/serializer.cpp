#include "common/serializer.h"

namespace poly {

void Serializer::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void Serializer::PutString(const std::string& s) {
  PutVarint(s.size());
  PutRaw(s.data(), s.size());
}

StatusOr<uint8_t> Deserializer::GetU8() {
  POLY_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

StatusOr<uint32_t> Deserializer::GetU32() {
  POLY_RETURN_IF_ERROR(Need(4));
  uint32_t v;
  std::memcpy(&v, data_ + pos_, 4);
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> Deserializer::GetU64() {
  POLY_RETURN_IF_ERROR(Need(8));
  uint64_t v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

StatusOr<int64_t> Deserializer::GetI64() {
  POLY_RETURN_IF_ERROR(Need(8));
  int64_t v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

StatusOr<double> Deserializer::GetDouble() {
  POLY_RETURN_IF_ERROR(Need(8));
  double v;
  std::memcpy(&v, data_ + pos_, 8);
  pos_ += 8;
  return v;
}

StatusOr<uint64_t> Deserializer::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    POLY_ASSIGN_OR_RETURN(uint8_t byte, GetU8());
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) return Status::Corruption("varint too long");
  }
  return v;
}

StatusOr<std::string> Deserializer::GetString() {
  POLY_ASSIGN_OR_RETURN(uint64_t len, GetVarint());
  POLY_RETURN_IF_ERROR(Need(len));
  std::string s(data_ + pos_, len);
  pos_ += len;
  return s;
}

}  // namespace poly
