#ifndef POLY_COMMON_ARENA_H_
#define POLY_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace poly {

namespace resource {
class BudgetNode;
}  // namespace resource

/// Bump-pointer allocator for short-lived query-processing allocations.
/// Allocations are freed all at once when the arena is destroyed or Reset().
/// Not thread-safe; each worker owns its own arena.
class Arena {
 public:
  explicit Arena(size_t block_size = 64 * 1024) : block_size_(block_size) {}
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Charges every block this arena reserves (now and in the future)
  /// against `budget`; Reset()/destruction release the charge. Force-
  /// charged: a bump allocator cannot fail mid-operator, limit enforcement
  /// belongs to the reservation that sized the operator (DESIGN.md §13.1).
  void BindMemoryBudget(resource::BudgetNode* budget);

  /// Returns `size` bytes aligned to `align` (power of two).
  void* Allocate(size_t size, size_t align = 8);

  /// Copies `len` bytes into the arena and returns the copy.
  char* CopyBytes(const char* data, size_t len);

  /// Constructs a T in arena memory. T must be trivially destructible
  /// (the arena never runs destructors).
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena does not run destructors");
    void* mem = Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  /// Frees all blocks except the first, which is recycled.
  void Reset();

  /// Total bytes reserved from the system allocator.
  size_t BytesReserved() const { return bytes_reserved_; }
  /// Total bytes handed out to callers since construction/Reset.
  size_t BytesAllocated() const { return bytes_allocated_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  Block* AddBlock(size_t min_size);

  size_t block_size_;
  std::vector<Block> blocks_;
  size_t bytes_reserved_ = 0;
  size_t bytes_allocated_ = 0;
  resource::BudgetNode* budget_ = nullptr;
  size_t budget_charged_ = 0;
};

}  // namespace poly

#endif  // POLY_COMMON_ARENA_H_
