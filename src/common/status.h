#ifndef POLY_COMMON_STATUS_H_
#define POLY_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace poly {

/// Error categories used across the ecosystem. Mirrors the RocksDB/Arrow
/// convention of a small closed set of codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kNotImplemented,
  kAborted,        ///< transaction conflicts, write-write aborts
  kUnavailable,    ///< node down, service not reachable
  kIOError,
  kInternal,
  kResourceExhausted,  ///< admission/budget denial: over quota, queue timeout
};

/// Returns a short human-readable name for a status code ("NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK (no
/// allocation); carries a message only on error. The library does not use
/// exceptions: every fallible public API returns Status or StatusOr<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status. Analogous to
/// absl::StatusOr / arrow::Result.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit by design: `return value;`).
  StatusOr(T value) : rep_(std::move(value)) {}
  /// Constructs from a non-OK status (implicit by design: `return status;`).
  StatusOr(Status status) : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() && "StatusOr must not hold OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

/// Propagates a non-OK Status to the caller.
#define POLY_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::poly::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors, else binds the value.
#define POLY_ASSIGN_OR_RETURN(lhs, expr)      \
  auto POLY_CONCAT_(_res_, __LINE__) = (expr);            \
  if (!POLY_CONCAT_(_res_, __LINE__).ok())                \
    return POLY_CONCAT_(_res_, __LINE__).status();        \
  lhs = std::move(POLY_CONCAT_(_res_, __LINE__)).value()

#define POLY_CONCAT_INNER_(a, b) a##b
#define POLY_CONCAT_(a, b) POLY_CONCAT_INNER_(a, b)

}  // namespace poly

#endif  // POLY_COMMON_STATUS_H_
