#include "common/metrics.h"

#include <bit>

namespace poly {
namespace metrics {

size_t Counter::ThisThreadShard() {
  // Threads take shard slots round-robin at first use; the modulo keeps the
  // table bounded when more threads than shards exist (they then share).
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

void Histogram::Observe(uint64_t value) {
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kBuckets);
  for (size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = min == UINT64_MAX ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  snap.p50 = snap.Quantile(0.50);
  snap.p90 = snap.Quantile(0.90);
  snap.p99 = snap.Quantile(0.99);
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) {
      // Upper bound of bucket i: values v with bit_width(v) == i satisfy
      // v <= 2^i - 1 (bucket 0 is exactly zero).
      return i == 0 ? 0 : (i >= 64 ? UINT64_MAX : (uint64_t{1} << i) - 1);
    }
  }
  return max;
}

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

RegistrySnapshot Registry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->Snapshot();
  return snap;
}

namespace {

/// Prometheus metric names use underscores; our dotted paths map 1:1.
std::string ExpoName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

}  // namespace

std::string Registry::TextPage() const {
  RegistrySnapshot snap = TakeSnapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    std::string n = ExpoName(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    std::string n = ExpoName(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    std::string n = ExpoName(name);
    out += "# TYPE " + n + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;  // sparse exposition: skip empty buckets
      cumulative += h.buckets[i];
      uint64_t le = i == 0 ? 0 : (i >= 64 ? UINT64_MAX : (uint64_t{1} << i) - 1);
      out += n + "_bucket{le=\"" + std::to_string(le) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum " + std::to_string(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
    // Precomputed quantiles as plain gauges (Prometheus summary idiom).
    out += n + "_p50 " + std::to_string(h.p50) + "\n";
    out += n + "_p90 " + std::to_string(h.p90) + "\n";
    out += n + "_p99 " + std::to_string(h.p99) + "\n";
  }
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) c->Reset();
  for (auto& [_, g] : gauges_) g->Set(0);
  for (auto& [_, h] : histograms_) h->Reset();
}

Registry& Default() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

std::string JoinName(const std::string& prefix, const std::string& suffix) {
  if (prefix.empty()) return suffix;
  if (suffix.empty()) return prefix;
  return prefix + "." + suffix;
}

}  // namespace metrics
}  // namespace poly
