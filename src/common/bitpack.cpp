#include "common/bitpack.h"

#include <cassert>

namespace poly {

int BitsFor(uint64_t max_value) {
  int bits = 1;
  while (bits < 64 && (max_value >> bits) != 0) ++bits;
  return bits;
}

BitPackedVector::BitPackedVector(int bits) : bits_(bits) {
  assert(bits >= 1 && bits <= 64);
}

void BitPackedVector::Append(uint64_t value) {
  assert(bits_ == 64 || (value >> bits_) == 0);
  size_t bit_pos = size_ * static_cast<size_t>(bits_);
  size_t word = bit_pos / 64;
  size_t offset = bit_pos % 64;
  size_t needed_words = (bit_pos + bits_ + 63) / 64;
  if (words_.size() < needed_words) words_.resize(needed_words, 0);
  words_[word] |= value << offset;
  if (offset + bits_ > 64) {
    words_[word + 1] |= value >> (64 - offset);
  }
  ++size_;
}

uint64_t BitPackedVector::Get(size_t index) const {
  assert(index < size_);
  size_t bit_pos = index * static_cast<size_t>(bits_);
  size_t word = bit_pos / 64;
  size_t offset = bit_pos % 64;
  uint64_t value = words_[word] >> offset;
  if (offset + bits_ > 64) {
    value |= words_[word + 1] << (64 - offset);
  }
  if (bits_ < 64) value &= (1ULL << bits_) - 1;
  return value;
}

void BitPackedVector::Set(size_t index, uint64_t value) {
  assert(index < size_);
  assert(bits_ == 64 || (value >> bits_) == 0);
  size_t bit_pos = index * static_cast<size_t>(bits_);
  size_t word = bit_pos / 64;
  size_t offset = bit_pos % 64;
  uint64_t mask = bits_ == 64 ? ~0ULL : ((1ULL << bits_) - 1);
  words_[word] = (words_[word] & ~(mask << offset)) | (value << offset);
  if (offset + bits_ > 64) {
    int high_bits = static_cast<int>(offset) + bits_ - 64;
    uint64_t high_mask = (1ULL << high_bits) - 1;
    words_[word + 1] = (words_[word + 1] & ~high_mask) | (value >> (64 - offset));
  }
}

BitPackedVector BitPackedVector::Repack(int new_bits) const {
  BitPackedVector out(new_bits);
  out.Reserve(size_);
  for (size_t i = 0; i < size_; ++i) out.Append(Get(i));
  return out;
}

void BitPackedVector::Decode(size_t begin, size_t end, uint64_t* out) const {
  for (size_t i = begin; i < end; ++i) *out++ = Get(i);
}

void BitPackedVector::Reserve(size_t n) {
  words_.reserve((n * static_cast<size_t>(bits_) + 63) / 64);
}

void BitPackedVector::Clear() {
  size_ = 0;
  words_.clear();
}

}  // namespace poly
