#include "common/string_util.h"

#include <cctype>

namespace poly {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer wildcard match; '%' = any run, '_' = one char.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace poly
