#include "types/schema.h"

namespace poly {

Schema::Schema(std::vector<ColumnDef> columns) {
  for (auto& c : columns) AddColumn(std::move(c));
}

void Schema::AddColumn(ColumnDef def) {
  index_[def.name] = columns_.size();
  columns_.push_back(std::move(def));
}

StatusOr<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return Status::NotFound("no column named '" + name + "'");
  return it->second;
}

bool Schema::Contains(const std::string& name) const {
  return index_.count(name) > 0;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DataTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace poly
