#ifndef POLY_TYPES_VALUE_SERDE_H_
#define POLY_TYPES_VALUE_SERDE_H_

#include "common/serializer.h"
#include "types/value.h"

namespace poly {

/// Appends a type-tagged encoding of `v` (used by the redo log, the shared
/// log, DFS blocks, and network messages).
void WriteValue(Serializer* out, const Value& v);

/// Decodes a value written by WriteValue.
StatusOr<Value> ReadValue(Deserializer* in);

}  // namespace poly

#endif  // POLY_TYPES_VALUE_SERDE_H_
