#ifndef POLY_TYPES_VALUE_H_
#define POLY_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace poly {

/// Logical column types. The paper's point (§II) is that geospatial points,
/// time-series, and documents are *native* types deep in the engine rather
/// than blobs; they appear here alongside the relational scalars.
enum class DataType : uint8_t {
  kInt64 = 0,
  kDouble,
  kString,
  kBool,
  kTimestamp,  ///< microseconds since epoch, stored as int64
  kGeoPoint,   ///< (lon, lat) pair, engine type from §II-F
  kDocument,   ///< JSON document column type from §II-H
  kNull,
};

const char* DataTypeName(DataType t);

/// Geospatial point payload for DataType::kGeoPoint.
struct GeoPointValue {
  double lon = 0.0;
  double lat = 0.0;
  bool operator==(const GeoPointValue& o) const { return lon == o.lon && lat == o.lat; }
  bool operator<(const GeoPointValue& o) const {
    return lon != o.lon ? lon < o.lon : lat < o.lat;
  }
};

/// A dynamically typed scalar cell. Rows cross module boundaries as
/// vectors of Values; inside the column store everything is dictionary
/// value IDs, and Values only materialize at the query surface.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Dbl(double v) { return Value(Rep(v)); }
  static Value Str(std::string v) { return Value(Rep(std::move(v))); }
  static Value Boolean(bool v) { return Value(Rep(v)); }
  static Value Timestamp(int64_t micros);
  static Value GeoPoint(double lon, double lat);
  /// Document payload is its JSON text; the docstore parses on demand.
  static Value Document(std::string json);

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  DataType type() const;

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsTimestamp() const { return std::get<int64_t>(rep_); }
  /// Returned by value (16 bytes): a reference here would dangle whenever
  /// the Value itself is a temporary, e.g. `table.GetValue(r, c).AsGeoPoint()`.
  GeoPointValue AsGeoPoint() const { return std::get<GeoPointValue>(rep_); }

  /// Numeric view: int64/double/bool/timestamp as double; 0 for others.
  double NumericValue() const;

  bool operator==(const Value& o) const;
  bool operator!=(const Value& o) const { return !(*this == o); }
  /// Total order used for sorting/dictionaries. Nulls sort first; values of
  /// different types order by type tag.
  bool operator<(const Value& o) const;

  std::string ToString() const;
  uint64_t Hash() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string, bool,
                           GeoPointValue>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
  // Distinguishes int64 vs timestamp and string vs document, which share a
  // physical representation.
  DataType tag_override_ = DataType::kNull;
};

}  // namespace poly

#endif  // POLY_TYPES_VALUE_H_
