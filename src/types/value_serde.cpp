#include "types/value_serde.h"

namespace poly {

void WriteValue(Serializer* out, const Value& v) {
  out->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kInt64:
      out->PutI64(v.AsInt());
      break;
    case DataType::kTimestamp:
      out->PutI64(v.AsTimestamp());
      break;
    case DataType::kDouble:
      out->PutDouble(v.AsDouble());
      break;
    case DataType::kBool:
      out->PutU8(v.AsBool() ? 1 : 0);
      break;
    case DataType::kString:
    case DataType::kDocument:
      out->PutString(v.AsString());
      break;
    case DataType::kGeoPoint:
      out->PutDouble(v.AsGeoPoint().lon);
      out->PutDouble(v.AsGeoPoint().lat);
      break;
  }
}

StatusOr<Value> ReadValue(Deserializer* in) {
  POLY_ASSIGN_OR_RETURN(uint8_t tag, in->GetU8());
  switch (static_cast<DataType>(tag)) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kInt64: {
      POLY_ASSIGN_OR_RETURN(int64_t v, in->GetI64());
      return Value::Int(v);
    }
    case DataType::kTimestamp: {
      POLY_ASSIGN_OR_RETURN(int64_t v, in->GetI64());
      return Value::Timestamp(v);
    }
    case DataType::kDouble: {
      POLY_ASSIGN_OR_RETURN(double v, in->GetDouble());
      return Value::Dbl(v);
    }
    case DataType::kBool: {
      POLY_ASSIGN_OR_RETURN(uint8_t v, in->GetU8());
      return Value::Boolean(v != 0);
    }
    case DataType::kString: {
      POLY_ASSIGN_OR_RETURN(std::string s, in->GetString());
      return Value::Str(std::move(s));
    }
    case DataType::kDocument: {
      POLY_ASSIGN_OR_RETURN(std::string s, in->GetString());
      return Value::Document(std::move(s));
    }
    case DataType::kGeoPoint: {
      POLY_ASSIGN_OR_RETURN(double lon, in->GetDouble());
      POLY_ASSIGN_OR_RETURN(double lat, in->GetDouble());
      return Value::GeoPoint(lon, lat);
    }
  }
  return Status::Corruption("unknown value tag " + std::to_string(tag));
}

}  // namespace poly
