#ifndef POLY_TYPES_SCHEMA_H_
#define POLY_TYPES_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace poly {

/// One column definition. `generated_key_order` is the §III application
/// hint: keys of this column arrive in generation order (e.g. "<context> +
/// incrementing counter"), so the dictionary merge may append instead of
/// re-sorting (experiment E11).
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;
  bool nullable = true;
  bool generated_key_order = false;

  ColumnDef() = default;
  ColumnDef(std::string n, DataType t, bool null_ok = true)
      : name(std::move(n)), type(t), nullable(null_ok) {}
};

/// Ordered collection of column definitions with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  /// Appends a column (used by flexible tables, §II-H, where a DML insert
  /// with an unseen column name implicitly extends the schema).
  void AddColumn(ColumnDef def);

  /// Index of a column by name, or NotFound.
  StatusOr<size_t> IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const;

  const ColumnDef& column(size_t i) const { return columns_[i]; }
  size_t num_columns() const { return columns_.size(); }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, size_t> index_;
};

/// A materialized row crossing the query surface.
using Row = std::vector<Value>;

}  // namespace poly

#endif  // POLY_TYPES_SCHEMA_H_
