#include "types/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace poly {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64: return "INT64";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "STRING";
    case DataType::kBool: return "BOOL";
    case DataType::kTimestamp: return "TIMESTAMP";
    case DataType::kGeoPoint: return "GEO_POINT";
    case DataType::kDocument: return "DOCUMENT";
    case DataType::kNull: return "NULL";
  }
  return "UNKNOWN";
}

Value Value::Timestamp(int64_t micros) {
  Value v{Rep(micros)};
  v.tag_override_ = DataType::kTimestamp;
  return v;
}

Value Value::GeoPoint(double lon, double lat) {
  return Value(Rep(GeoPointValue{lon, lat}));
}

Value Value::Document(std::string json) {
  Value v{Rep(std::move(json))};
  v.tag_override_ = DataType::kDocument;
  return v;
}

DataType Value::type() const {
  if (tag_override_ != DataType::kNull) return tag_override_;
  switch (rep_.index()) {
    case 0: return DataType::kNull;
    case 1: return DataType::kInt64;
    case 2: return DataType::kDouble;
    case 3: return DataType::kString;
    case 4: return DataType::kBool;
    case 5: return DataType::kGeoPoint;
  }
  return DataType::kNull;
}

double Value::NumericValue() const {
  switch (rep_.index()) {
    case 1: return static_cast<double>(std::get<int64_t>(rep_));
    case 2: return std::get<double>(rep_);
    case 4: return std::get<bool>(rep_) ? 1.0 : 0.0;
    default: return 0.0;
  }
}

bool Value::operator==(const Value& o) const { return rep_ == o.rep_; }

bool Value::operator<(const Value& o) const {
  // Cross-type numeric comparison keeps int/double predicates natural.
  bool this_num = rep_.index() == 1 || rep_.index() == 2;
  bool o_num = o.rep_.index() == 1 || o.rep_.index() == 2;
  if (this_num && o_num) return NumericValue() < o.NumericValue();
  if (rep_.index() != o.rep_.index()) return rep_.index() < o.rep_.index();
  return rep_ < o.rep_;
}

std::string Value::ToString() const {
  switch (rep_.index()) {
    case 0: return "NULL";
    case 1: return std::to_string(std::get<int64_t>(rep_));
    case 2: {
      std::ostringstream os;
      os << std::get<double>(rep_);
      return os.str();
    }
    case 3: return std::get<std::string>(rep_);
    case 4: return std::get<bool>(rep_) ? "true" : "false";
    case 5: {
      const auto& g = std::get<GeoPointValue>(rep_);
      std::ostringstream os;
      os << "POINT(" << g.lon << " " << g.lat << ")";
      return os.str();
    }
  }
  return "?";
}

uint64_t Value::Hash() const {
  switch (rep_.index()) {
    case 0: return 0x9E3779B97F4A7C15ULL;
    case 1: return std::hash<int64_t>{}(std::get<int64_t>(rep_));
    case 2: return std::hash<double>{}(std::get<double>(rep_));
    case 3: return std::hash<std::string>{}(std::get<std::string>(rep_));
    case 4: return std::get<bool>(rep_) ? 1 : 2;
    case 5: {
      const auto& g = std::get<GeoPointValue>(rep_);
      return std::hash<double>{}(g.lon) * 31 + std::hash<double>{}(g.lat);
    }
  }
  return 0;
}

}  // namespace poly
