#include "resource/memory_budget.h"

namespace poly {
namespace resource {

BudgetNode::BudgetNode(std::string name, uint64_t limit_bytes,
                       BudgetNode* parent, metrics::Gauge* gauge)
    : name_(std::move(name)),
      limit_bytes_(limit_bytes),
      parent_(parent),
      owner_(parent ? parent->owner_ : nullptr),
      gauge_(gauge) {}

BudgetNode::~BudgetNode() {
  // A node dying with bytes outstanding means some charge was never
  // released — the Reservation discipline makes this unreachable, and the
  // balance oracle tests for it. Don't try to "fix up" ancestors here: that
  // would mask the leak the oracle exists to catch.
  assert(used_.load(std::memory_order_relaxed) == 0 &&
         "BudgetNode destroyed with outstanding charges");
}

void BudgetNode::NotePeak(uint64_t now) {
  uint64_t p = peak_.load(std::memory_order_relaxed);
  while (now > p &&
         !peak_.compare_exchange_weak(p, now, std::memory_order_relaxed)) {
  }
}

Status BudgetNode::TryCharge(uint64_t bytes) {
  if (bytes == 0) return Status::OK();
  BudgetNode* n = this;
  while (n != nullptr) {
    uint64_t before = n->used_.fetch_add(bytes, std::memory_order_relaxed);
    if (n->limit_bytes_ != 0 && before + bytes > n->limit_bytes_) {
      // Roll back this level and every level already charged below it. The
      // failing level never had its gauge bumped, so skip it there.
      for (BudgetNode* r = this;; r = r->parent_) {
        r->used_.fetch_sub(bytes, std::memory_order_relaxed);
        if (r == n) break;
        if (r->gauge_ != nullptr) r->gauge_->Add(-static_cast<int64_t>(bytes));
      }
      if (owner_ != nullptr) owner_->denied_->Add();
      return Status::ResourceExhausted(
          "memory budget '" + n->name_ + "' exhausted: " +
          std::to_string(before) + " + " + std::to_string(bytes) + " > " +
          std::to_string(n->limit_bytes_) + " bytes");
    }
    n->NotePeak(before + bytes);
    if (n->gauge_ != nullptr) n->gauge_->Add(static_cast<int64_t>(bytes));
    if (n->parent_ == nullptr && owner_ != nullptr) {
      owner_->MaybeSignalPressure(before + bytes);
    }
    n = n->parent_;
  }
  return Status::OK();
}

void BudgetNode::ForceCharge(uint64_t bytes) {
  if (bytes == 0) return;
  for (BudgetNode* n = this; n != nullptr; n = n->parent_) {
    uint64_t now =
        n->used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    n->NotePeak(now);
    if (n->gauge_ != nullptr) n->gauge_->Add(static_cast<int64_t>(bytes));
    if (n->parent_ == nullptr && owner_ != nullptr) {
      owner_->MaybeSignalPressure(now);
    }
  }
}

void BudgetNode::Release(uint64_t bytes) {
  if (bytes == 0) return;
  for (BudgetNode* n = this; n != nullptr; n = n->parent_) {
    n->used_.fetch_sub(bytes, std::memory_order_relaxed);
    if (n->gauge_ != nullptr) n->gauge_->Add(-static_cast<int64_t>(bytes));
  }
}

Status Reservation::Grow(uint64_t bytes) {
  if (node_ == nullptr || bytes == 0) return Status::OK();
  POLY_RETURN_IF_ERROR(node_->TryCharge(bytes));
  held_ += bytes;
  return Status::OK();
}

void Reservation::Shrink(uint64_t bytes) {
  if (node_ == nullptr) return;
  if (bytes > held_) bytes = held_;
  node_->Release(bytes);
  held_ -= bytes;
}

void Reservation::ReleaseAll() {
  if (node_ != nullptr && held_ > 0) node_->Release(held_);
  held_ = 0;
}

MemoryBudget::MemoryBudget(Options options, metrics::Registry* registry)
    : options_(options),
      registry_(registry),
      root_("global", options.total_limit_bytes, nullptr,
            registry->gauge("resource.used_bytes")),
      denied_(registry->counter("resource.denied")),
      pressure_signals_(registry->counter("resource.pressure.signals")) {
  root_.owner_ = this;
  if (options_.total_limit_bytes > 0) {
    high_water_bytes_ = static_cast<uint64_t>(
        static_cast<double>(options_.total_limit_bytes) * options_.high_water);
    low_water_bytes_ = static_cast<uint64_t>(
        static_cast<double>(options_.total_limit_bytes) * options_.low_water);
  }
  registry->gauge("resource.limit_bytes")
      ->Set(static_cast<int64_t>(options_.total_limit_bytes));
}

BudgetNode* MemoryBudget::GetOrCreateClass(const std::string& name,
                                           uint64_t limit_bytes) {
  {
    std::lock_guard<std::mutex> lock(classes_mu_);
    auto it = classes_.find(name);
    if (it != classes_.end()) return it->second.get();
  }
  // Build the node — registry lookup included — without holding
  // classes_mu_: the registry has its own mutex, and nesting another
  // subsystem's lock under ours is how lock-order inversions start.
  auto node = std::make_unique<BudgetNode>(
      name, limit_bytes, &root_,
      registry_->gauge("resource.class." + name + ".used_bytes"));
  std::lock_guard<std::mutex> lock(classes_mu_);
  auto [it, inserted] = classes_.emplace(name, std::move(node));
  return it->second.get();  // a racing creator's node wins; ours is dropped
}

std::unique_ptr<BudgetNode> MemoryBudget::NewQueryNode(
    BudgetNode* parent, uint64_t limit_bytes, const std::string& label) {
  if (parent == nullptr) parent = &root_;
  return std::make_unique<BudgetNode>(label, limit_bytes, parent,
                                      /*gauge=*/nullptr);
}

void MemoryBudget::MaybeSignalPressure(uint64_t root_used) {
  if (high_water_bytes_ == 0 || root_used < high_water_bytes_) return;
  PressureListener* l = listener_.load(std::memory_order_acquire);
  if (l == nullptr) return;
  pressure_signals_->Add();
  l->OnPressure(root_used, options_.total_limit_bytes);
}

std::vector<std::pair<std::string, uint64_t>> MemoryBudget::Snapshot() const {
  std::vector<std::pair<std::string, uint64_t>> out;
  out.emplace_back(root_.name(), root_.used());
  std::lock_guard<std::mutex> lock(classes_mu_);
  for (const auto& [name, node] : classes_) {
    out.emplace_back(name, node->used());
  }
  return out;
}

}  // namespace resource
}  // namespace poly
