#ifndef POLY_RESOURCE_MEMORY_BUDGET_H_
#define POLY_RESOURCE_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace poly {
namespace resource {

class MemoryBudget;

/// One node in the budget hierarchy: global root -> workload class ->
/// query. Accounting is a single relaxed fetch_add per level, so charging
/// is cheap enough to sit on executor materialization paths. A node with
/// limit 0 is unlimited (accounting-only); a node with a limit rejects
/// charges that would push *it or any ancestor* over (DESIGN.md §13.1).
class BudgetNode {
 public:
  BudgetNode(std::string name, uint64_t limit_bytes, BudgetNode* parent,
             metrics::Gauge* gauge = nullptr);
  ~BudgetNode();

  BudgetNode(const BudgetNode&) = delete;
  BudgetNode& operator=(const BudgetNode&) = delete;

  /// Admission-checked charge: adds `bytes` to this node and every ancestor.
  /// If any level would exceed its limit the whole charge is rolled back and
  /// ResourceExhausted names the offending node. Memory ordering is relaxed:
  /// the counters are quotas, not synchronization edges — over-admission by
  /// one in-flight charge per thread is acceptable (and bounded), lost
  /// updates are not possible (fetch_add).
  Status TryCharge(uint64_t bytes);

  /// Accounting-only charge: never fails, used by allocators and storage
  /// that cannot unwind mid-flight (delta appends, adopted page-ins). Limit
  /// enforcement for those paths happens at admission / pressure time.
  void ForceCharge(uint64_t bytes);

  /// Returns `bytes` to this node and every ancestor. Callers must release
  /// exactly what they charged; the Reservation RAII handle guarantees it.
  void Release(uint64_t bytes);

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }

  /// High-water mark of `used()` over this node's lifetime (relaxed
  /// CAS-max per charge — charges are per-operator, never per-row). A
  /// charge that is later rolled back by TryCharge still counts: the bytes
  /// were transiently on the counter, and peak is a sizing heuristic, not
  /// an invariant.
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  uint64_t limit_bytes() const { return limit_bytes_; }
  const std::string& name() const { return name_; }
  BudgetNode* parent() const { return parent_; }

 private:
  friend class MemoryBudget;

  void NotePeak(uint64_t now);

  const std::string name_;
  const uint64_t limit_bytes_;  // 0 = unlimited
  BudgetNode* const parent_;
  MemoryBudget* owner_ = nullptr;  // set on root + descendants by MemoryBudget
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  metrics::Gauge* gauge_ = nullptr;  // mirrors used_; null for query nodes
};

/// Listener for high-water crossings on the root budget. Implementations
/// must be cheap and non-blocking: the callback runs on whatever thread
/// performed the charge (often an executor worker). PressureBroker just
/// flips a flag and wakes its background thread.
class PressureListener {
 public:
  virtual ~PressureListener() = default;
  virtual void OnPressure(uint64_t used_bytes, uint64_t limit_bytes) = 0;
};

/// RAII charge against a BudgetNode. Move-only; releases whatever it still
/// holds on destruction, so every exit path — success, error, timeout —
/// returns its bytes. The balance oracle in resource_test.cpp leans on this.
class Reservation {
 public:
  Reservation() = default;
  explicit Reservation(BudgetNode* node) : node_(node) {}
  ~Reservation() { ReleaseAll(); }

  Reservation(Reservation&& other) noexcept
      : node_(other.node_), held_(other.held_) {
    other.node_ = nullptr;
    other.held_ = 0;
  }
  Reservation& operator=(Reservation&& other) noexcept {
    if (this != &other) {
      ReleaseAll();
      node_ = other.node_;
      held_ = other.held_;
      other.node_ = nullptr;
      other.held_ = 0;
    }
    return *this;
  }
  Reservation(const Reservation&) = delete;
  Reservation& operator=(const Reservation&) = delete;

  /// Charges `bytes` more. No-op success when unbound (node == nullptr), so
  /// executors can call unconditionally.
  Status Grow(uint64_t bytes);

  /// Returns part of the holding early (e.g. an operator input freed once
  /// its output is materialized). Clamped to what is held.
  void Shrink(uint64_t bytes);

  void ReleaseAll();

  uint64_t held_bytes() const { return held_; }
  BudgetNode* node() const { return node_; }

 private:
  BudgetNode* node_ = nullptr;
  uint64_t held_ = 0;
};

/// Owns the budget tree: one root (the process/global limit), named
/// workload-class children, and factory for per-query leaves. Publishes
/// `resource.used_bytes` and `resource.class.<name>.used_bytes` gauges on
/// the registry it was built with (per-Database registries keep standalone
/// instances from cross-polluting, see Database::set_metrics_registry).
class MemoryBudget {
 public:
  struct Options {
    uint64_t total_limit_bytes = 0;  ///< 0 = unlimited (accounting only)
    /// High/low water as fractions of the total limit. Crossing high on a
    /// charge notifies the PressureListener; the broker then spills until
    /// usage drops below low (DESIGN.md §13.3).
    double high_water = 0.85;
    double low_water = 0.70;
  };

  explicit MemoryBudget(Options options,
                        metrics::Registry* registry = &metrics::Default());

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  BudgetNode* root() { return &root_; }

  /// Get-or-create a workload-class node directly under the root. Limit is
  /// fixed on first creation; later calls ignore `limit_bytes`.
  BudgetNode* GetOrCreateClass(const std::string& name, uint64_t limit_bytes);

  /// Mints a per-query leaf under `parent` (a class node or the root).
  /// Caller owns it; destroying it while charges are outstanding is a bug
  /// the balance oracle would catch (used() must be zero by then).
  std::unique_ptr<BudgetNode> NewQueryNode(BudgetNode* parent,
                                           uint64_t limit_bytes,
                                           const std::string& label);

  /// Atomically installs the pressure listener (null to detach). The
  /// listener must outlive either detachment or this budget.
  void set_pressure_listener(PressureListener* listener) {
    listener_.store(listener, std::memory_order_release);
  }

  uint64_t used_bytes() const { return root_.used(); }
  /// Lifetime high-water mark of total usage (see BudgetNode::peak).
  uint64_t peak_bytes() const { return root_.peak(); }
  uint64_t total_limit_bytes() const { return options_.total_limit_bytes; }
  uint64_t high_water_bytes() const { return high_water_bytes_; }
  uint64_t low_water_bytes() const { return low_water_bytes_; }
  bool above_high_water() const {
    return high_water_bytes_ > 0 && used_bytes() >= high_water_bytes_;
  }
  bool above_low_water() const {
    return low_water_bytes_ > 0 && used_bytes() > low_water_bytes_;
  }

  metrics::Registry* registry() { return registry_; }

  /// (name, used) for the root and every class node — the balance oracle
  /// asserts all of these return to zero after a workload drains.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

 private:
  friend class BudgetNode;

  /// Called by BudgetNode after a root-level charge lands.
  void MaybeSignalPressure(uint64_t root_used);

  Options options_;
  metrics::Registry* registry_;
  uint64_t high_water_bytes_ = 0;
  uint64_t low_water_bytes_ = 0;
  BudgetNode root_;
  std::atomic<PressureListener*> listener_{nullptr};
  metrics::Counter* denied_;          // resource.denied
  metrics::Counter* pressure_signals_;  // resource.pressure.signals

  mutable std::mutex classes_mu_;
  std::map<std::string, std::unique_ptr<BudgetNode>> classes_;
};

}  // namespace resource
}  // namespace poly

#endif  // POLY_RESOURCE_MEMORY_BUDGET_H_
