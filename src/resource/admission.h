#ifndef POLY_RESOURCE_ADMISSION_H_
#define POLY_RESOURCE_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "resource/memory_budget.h"

namespace poly {
namespace resource {

class AdmissionController;

/// RAII admission grant: holds one concurrency slot of its workload class
/// plus a freshly minted per-query BudgetNode for the executor to charge
/// materializations against. Releasing (destruction) frees the slot, wakes
/// one queued query, and destroys the query node — which asserts that every
/// byte charged during the query was released first.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  ~AdmissionTicket() { Release(); }

  AdmissionTicket(AdmissionTicket&& other) noexcept { MoveFrom(other); }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool valid() const { return controller_ != nullptr; }
  const std::string& workload_class() const { return class_name_; }
  /// Budget to thread into ExecOptions::budget. Null for an empty ticket.
  BudgetNode* budget() const { return query_node_.get(); }

  void Release();

 private:
  friend class AdmissionController;

  void MoveFrom(AdmissionTicket& other) {
    controller_ = other.controller_;
    class_name_ = std::move(other.class_name_);
    query_node_ = std::move(other.query_node_);
    other.controller_ = nullptr;
  }

  AdmissionController* controller_ = nullptr;
  std::string class_name_;
  std::unique_ptr<BudgetNode> query_node_;
};

/// Gatekeeper in front of query execution (DESIGN.md §13.2): each named
/// workload class owns a fixed number of concurrency slots and a memory
/// quota (its BudgetNode limit). A query that finds no free slot either
/// queues — bounded, with a deadline — or fails fast with ResourceExhausted.
/// The controller never blocks admitted work: all waiting happens on the
/// per-class condition variable before a slot is granted.
class AdmissionController {
 public:
  struct ClassOptions {
    size_t max_concurrent = 4;   ///< slots; 0 = class admits nothing
    size_t max_queued = 16;      ///< queue bound; beyond it: reject
    bool fail_fast = false;      ///< never queue, reject when saturated
    std::chrono::milliseconds queue_timeout{500};
    uint64_t memory_limit_bytes = 0;     ///< class quota (BudgetNode limit)
    uint64_t per_query_limit_bytes = 0;  ///< cap for each query node
  };

  AdmissionController(MemoryBudget* budget, metrics::Registry* registry);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Defines (or redefines the options of) a workload class. Not
  /// thread-safe against concurrent Admit on the same new class — define
  /// classes at setup time, before traffic.
  void DefineClass(const std::string& name, ClassOptions options);

  bool HasClass(const std::string& name) const;

  /// Blocks until a slot is granted, the queue deadline expires, or the
  /// class rejects (unknown class falls back to `fallback_class`, and if
  /// that is also unknown, InvalidArgument).
  StatusOr<AdmissionTicket> Admit(const std::string& class_name);

  void set_fallback_class(std::string name) {
    fallback_class_ = std::move(name);
  }
  const std::string& fallback_class() const { return fallback_class_; }

  size_t active(const std::string& class_name) const;
  size_t queued(const std::string& class_name) const;

 private:
  friend class AdmissionTicket;

  struct ClassState {
    ClassOptions options;
    BudgetNode* node = nullptr;  // class budget (owned by MemoryBudget)
    mutable std::mutex mu;
    std::condition_variable cv;
    size_t active = 0;
    size_t queued = 0;
    uint64_t next_query_id = 0;
    metrics::Counter* admitted = nullptr;
    metrics::Counter* rejected = nullptr;
    metrics::Counter* timeouts = nullptr;
    metrics::Counter* queued_total = nullptr;
    metrics::Gauge* active_gauge = nullptr;
    metrics::Gauge* queued_gauge = nullptr;
    metrics::Histogram* queue_wait = nullptr;  // nanos spent queued
  };

  void ReleaseSlot(const std::string& class_name);
  ClassState* FindClass(const std::string& name) const;

  MemoryBudget* budget_;
  metrics::Registry* registry_;
  std::string fallback_class_;

  mutable std::mutex classes_mu_;  // guards the map shape, not ClassState
  std::map<std::string, std::unique_ptr<ClassState>> classes_;
};

}  // namespace resource
}  // namespace poly

#endif  // POLY_RESOURCE_ADMISSION_H_
