#ifndef POLY_RESOURCE_GOVERNOR_H_
#define POLY_RESOURCE_GOVERNOR_H_

#include <map>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "resource/admission.h"
#include "resource/memory_budget.h"
#include "resource/pressure.h"

namespace poly {
namespace resource {

/// Facade tying the three workload-management pieces together (DESIGN.md
/// §13): one MemoryBudget (global limit + watermarks), an
/// AdmissionController over named workload classes, and a PressureBroker
/// wired to whatever spill target the embedder binds (normally
/// TieringDaemon::SpillForPressure). A Database points at one governor via
/// `set_resource_governor`; every `Database::Execute` call then passes
/// through admission and runs under a per-query budget.
class ResourceGovernor {
 public:
  struct Options {
    MemoryBudget::Options budget;
    /// Workload classes to define up front. Empty = the default trio:
    ///   oltp  - many slots, small per-query budgets, short queue timeout
    ///   olap  - few slots, big budgets, longer queueing
    ///   batch - fewest slots, fail-fast (retry is the caller's job)
    /// Class quotas default to fractions of the total limit (0 if the
    /// budget itself is unlimited).
    std::map<std::string, AdmissionController::ClassOptions> classes;
    std::string default_class = "oltp";
    PressureBroker::Options pressure;
  };

  explicit ResourceGovernor(Options options,
                            metrics::Registry* registry = &metrics::Default());

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  MemoryBudget& budget() { return budget_; }
  AdmissionController& admission() { return admission_; }
  PressureBroker& pressure() { return pressure_; }

  /// Accounting node for table/delta storage (child of the root, no limit:
  /// storage growth is governed by pressure-driven spill, not rejection).
  BudgetNode* storage_node() { return storage_; }

  /// Admission entry point used by Database::Execute. Empty class name
  /// means Options::default_class.
  StatusOr<AdmissionTicket> AdmitQuery(const std::string& workload_class) {
    return admission_.Admit(workload_class);
  }

 private:
  MemoryBudget budget_;
  AdmissionController admission_;
  PressureBroker pressure_;
  BudgetNode* storage_;
};

}  // namespace resource
}  // namespace poly

#endif  // POLY_RESOURCE_GOVERNOR_H_
