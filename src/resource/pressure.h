#ifndef POLY_RESOURCE_PRESSURE_H_
#define POLY_RESOURCE_PRESSURE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "common/metrics.h"
#include "resource/memory_budget.h"

namespace poly {
namespace resource {

/// Bridges the MemoryBudget's high-water signal to the tiering machinery
/// (DESIGN.md §13.3). Registered as the budget's PressureListener, it turns
/// the in-line "we just crossed high water" callback into out-of-band spill
/// work: a background thread (or a synchronous RunOnce in tests) repeatedly
/// asks its spill callback — typically TieringDaemon::SpillForPressure — to
/// free bytes until usage drops below the low-water mark or the callback
/// reports it has nothing left to evict.
///
/// Memory ordering: OnPressure only flips a flag under the broker mutex and
/// notifies; all spill work happens on the broker thread. The spill
/// callback is installed before Start and never changed while running.
class PressureBroker : public PressureListener {
 public:
  struct Options {
    /// Fallback poll period: the broker also re-checks the watermark on its
    /// own cadence, so pressure built by ForceCharge paths that raced the
    /// listener install is still seen.
    std::chrono::milliseconds poll_period{50};
    /// Ask the spill callback for at least this much beyond the low-water
    /// deficit, so one pass usually suffices (hysteresis against ping-pong).
    uint64_t min_spill_bytes = 64 * 1024;
  };

  /// Spill callback: try to free ~`bytes` of budgeted memory; returns the
  /// bytes actually freed (0 = nothing evictable, stop asking this pass).
  using SpillFn = std::function<uint64_t(uint64_t bytes)>;

  explicit PressureBroker(MemoryBudget* budget)
      : PressureBroker(budget, Options()) {}
  PressureBroker(MemoryBudget* budget, Options options);
  ~PressureBroker() override;

  PressureBroker(const PressureBroker&) = delete;
  PressureBroker& operator=(const PressureBroker&) = delete;

  /// Install the spill target. Must be called before Start / RunOnce and
  /// not concurrently with them.
  void set_spill(SpillFn fn) { spill_ = std::move(fn); }

  /// Registers with the budget and starts the background thread. Idempotent.
  void Start();

  /// Detaches from the budget and joins the thread. Safe to call twice;
  /// called by the destructor. Callers must Stop the broker before
  /// destroying whatever the spill callback captures (e.g. the daemon).
  void Stop();

  bool running() const;

  /// PressureListener: called on the charging thread when the root budget
  /// crosses high water. Non-blocking by design.
  void OnPressure(uint64_t used_bytes, uint64_t limit_bytes) override;

  /// Synchronous spill pass for deterministic tests: if above high water,
  /// spill until below low water or exhausted. Returns bytes freed.
  uint64_t RunOnce();

 private:
  void ThreadMain();
  uint64_t SpillPass();

  MemoryBudget* budget_;
  Options options_;
  SpillFn spill_;

  metrics::Counter* events_;          // resource.pressure.events
  metrics::Counter* spilled_bytes_;   // resource.pressure.spilled_bytes
  metrics::Counter* exhausted_;       // resource.pressure.exhausted
  metrics::Gauge* active_;            // resource.pressure.active

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool pending_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace resource
}  // namespace poly

#endif  // POLY_RESOURCE_PRESSURE_H_
