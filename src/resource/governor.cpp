#include "resource/governor.h"

namespace poly {
namespace resource {

namespace {

std::map<std::string, AdmissionController::ClassOptions> DefaultClasses(
    uint64_t total_limit) {
  auto frac = [total_limit](double f) -> uint64_t {
    return total_limit == 0
               ? 0
               : static_cast<uint64_t>(static_cast<double>(total_limit) * f);
  };
  std::map<std::string, AdmissionController::ClassOptions> classes;
  {
    AdmissionController::ClassOptions oltp;
    oltp.max_concurrent = 64;
    oltp.max_queued = 256;
    oltp.queue_timeout = std::chrono::milliseconds(100);
    oltp.memory_limit_bytes = frac(0.25);
    classes["oltp"] = oltp;
  }
  {
    AdmissionController::ClassOptions olap;
    olap.max_concurrent = 4;
    olap.max_queued = 16;
    olap.queue_timeout = std::chrono::milliseconds(1000);
    olap.memory_limit_bytes = frac(0.50);
    classes["olap"] = olap;
  }
  {
    AdmissionController::ClassOptions batch;
    batch.max_concurrent = 2;
    batch.fail_fast = true;
    batch.memory_limit_bytes = frac(0.25);
    classes["batch"] = batch;
  }
  return classes;
}

}  // namespace

ResourceGovernor::ResourceGovernor(Options options, metrics::Registry* registry)
    : budget_(options.budget, registry),
      admission_(&budget_, registry),
      pressure_(&budget_, options.pressure) {
  auto classes = options.classes.empty()
                     ? DefaultClasses(options.budget.total_limit_bytes)
                     : std::move(options.classes);
  for (auto& [name, cls] : classes) {
    admission_.DefineClass(name, cls);
  }
  admission_.set_fallback_class(options.default_class.empty()
                                    ? classes.begin()->first
                                    : options.default_class);
  // Storage accounting rides directly under the root: tables are shared
  // across workload classes, so their bytes belong to no one class.
  storage_ = budget_.GetOrCreateClass("storage", /*limit_bytes=*/0);
}

}  // namespace resource
}  // namespace poly
