#include "resource/admission.h"

namespace poly {
namespace resource {

void AdmissionTicket::Release() {
  if (controller_ == nullptr) return;
  // Order matters: destroy the query node (asserting its balance is zero)
  // before freeing the slot, so a queued query admitted into our slot can
  // never observe our query's charges still outstanding against the class.
  query_node_.reset();
  controller_->ReleaseSlot(class_name_);
  controller_ = nullptr;
}

AdmissionController::AdmissionController(MemoryBudget* budget,
                                         metrics::Registry* registry)
    : budget_(budget), registry_(registry) {}

void AdmissionController::DefineClass(const std::string& name,
                                      ClassOptions options) {
  {
    std::lock_guard<std::mutex> lock(classes_mu_);
    auto it = classes_.find(name);
    if (it != classes_.end()) {
      std::lock_guard<std::mutex> state_lock(it->second->mu);
      it->second->options = options;
      return;
    }
  }
  // Assemble the class — budget node and registry series — without
  // holding classes_mu_: both calls take their own subsystem's mutex, and
  // classes_mu_ must stay a leaf in the lock order.
  auto state = std::make_unique<ClassState>();
  state->options = options;
  state->node = budget_->GetOrCreateClass(name, options.memory_limit_bytes);
  const std::string prefix = "resource.admission." + name + ".";
  state->admitted = registry_->counter(prefix + "admitted");
  state->rejected = registry_->counter(prefix + "rejected");
  state->timeouts = registry_->counter(prefix + "timeouts");
  state->queued_total = registry_->counter(prefix + "queued");
  state->active_gauge = registry_->gauge(prefix + "active");
  state->queued_gauge = registry_->gauge(prefix + "waiting");
  state->queue_wait = registry_->histogram(prefix + "queue_wait_nanos");
  std::lock_guard<std::mutex> lock(classes_mu_);
  auto it = classes_.find(name);
  if (it != classes_.end()) {
    // Raced definition: the first insert won; apply ours as an update.
    std::lock_guard<std::mutex> state_lock(it->second->mu);
    it->second->options = options;
    return;
  }
  classes_.emplace(name, std::move(state));
  if (fallback_class_.empty()) fallback_class_ = name;
}

bool AdmissionController::HasClass(const std::string& name) const {
  std::lock_guard<std::mutex> lock(classes_mu_);
  return classes_.count(name) > 0;
}

AdmissionController::ClassState* AdmissionController::FindClass(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(classes_mu_);
  auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : it->second.get();
}

StatusOr<AdmissionTicket> AdmissionController::Admit(
    const std::string& class_name) {
  std::string effective = class_name.empty() ? fallback_class_ : class_name;
  ClassState* cls = FindClass(effective);
  if (cls == nullptr && effective != fallback_class_) {
    effective = fallback_class_;
    cls = FindClass(effective);
  }
  if (cls == nullptr) {
    return Status::InvalidArgument("unknown workload class '" + class_name +
                                   "' and no fallback class defined");
  }

  uint64_t query_id = 0;
  {
    std::unique_lock<std::mutex> lock(cls->mu);
    if (cls->active >= cls->options.max_concurrent) {
      if (cls->options.fail_fast || cls->options.max_concurrent == 0 ||
          cls->queued >= cls->options.max_queued) {
        cls->rejected->Add();
        return Status::ResourceExhausted(
            "workload class '" + effective + "' saturated (" +
            std::to_string(cls->active) + " active, " +
            std::to_string(cls->queued) + " queued)");
      }
      ++cls->queued;
      cls->queued_total->Add();
      cls->queued_gauge->Set(static_cast<int64_t>(cls->queued));
      auto wait_begin = std::chrono::steady_clock::now();
      bool granted = cls->cv.wait_for(lock, cls->options.queue_timeout, [&] {
        return cls->active < cls->options.max_concurrent;
      });
      auto waited = std::chrono::steady_clock::now() - wait_begin;
      cls->queue_wait->Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
              .count()));
      --cls->queued;
      cls->queued_gauge->Set(static_cast<int64_t>(cls->queued));
      if (!granted) {
        cls->timeouts->Add();
        return Status::ResourceExhausted(
            "workload class '" + effective + "' queue timeout after " +
            std::to_string(cls->options.queue_timeout.count()) + "ms");
      }
    }
    ++cls->active;
    cls->active_gauge->Set(static_cast<int64_t>(cls->active));
    cls->admitted->Add();
    query_id = cls->next_query_id++;
  }

  AdmissionTicket ticket;
  ticket.controller_ = this;
  ticket.class_name_ = effective;
  ticket.query_node_ = budget_->NewQueryNode(
      cls->node, cls->options.per_query_limit_bytes,
      effective + "/q" + std::to_string(query_id));
  return ticket;
}

void AdmissionController::ReleaseSlot(const std::string& class_name) {
  ClassState* cls = FindClass(class_name);
  if (cls == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(cls->mu);
    assert(cls->active > 0);
    --cls->active;
    cls->active_gauge->Set(static_cast<int64_t>(cls->active));
  }
  cls->cv.notify_one();
}

size_t AdmissionController::active(const std::string& class_name) const {
  ClassState* cls = FindClass(class_name);
  if (cls == nullptr) return 0;
  std::lock_guard<std::mutex> lock(cls->mu);
  return cls->active;
}

size_t AdmissionController::queued(const std::string& class_name) const {
  ClassState* cls = FindClass(class_name);
  if (cls == nullptr) return 0;
  std::lock_guard<std::mutex> lock(cls->mu);
  return cls->queued;
}

}  // namespace resource
}  // namespace poly
