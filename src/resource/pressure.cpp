#include "resource/pressure.h"

namespace poly {
namespace resource {

PressureBroker::PressureBroker(MemoryBudget* budget, Options options)
    : budget_(budget),
      options_(options),
      events_(budget->registry()->counter("resource.pressure.events")),
      spilled_bytes_(
          budget->registry()->counter("resource.pressure.spilled_bytes")),
      exhausted_(budget->registry()->counter("resource.pressure.exhausted")),
      active_(budget->registry()->gauge("resource.pressure.active")) {}

PressureBroker::~PressureBroker() { Stop(); }

void PressureBroker::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    stop_ = false;
    pending_ = false;
    running_ = true;
  }
  budget_->set_pressure_listener(this);
  thread_ = std::thread([this] { ThreadMain(); });
}

void PressureBroker::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  // Detach from the budget first so no charging thread calls OnPressure on
  // a broker that is tearing down.
  budget_->set_pressure_listener(nullptr);
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool PressureBroker::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void PressureBroker::OnPressure(uint64_t /*used_bytes*/,
                                uint64_t /*limit_bytes*/) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || pending_) return;  // a pass is already scheduled
    pending_ = true;
  }
  cv_.notify_one();
}

uint64_t PressureBroker::RunOnce() {
  if (!budget_->above_high_water()) return 0;
  return SpillPass();
}

uint64_t PressureBroker::SpillPass() {
  if (!spill_) return 0;
  active_->Set(1);
  events_->Add();
  uint64_t total_freed = 0;
  // Spill until we sink below the LOW water mark, not just the high one —
  // the gap is the hysteresis band that keeps the broker from thrashing.
  while (budget_->above_low_water()) {
    uint64_t used = budget_->used_bytes();
    uint64_t low = budget_->low_water_bytes();
    uint64_t deficit = used > low ? used - low : 0;
    uint64_t freed = spill_(deficit + options_.min_spill_bytes);
    if (freed == 0) {
      // Nothing left the spill target is willing to evict (all partitions
      // already cold, or movement contended). Give up this pass rather
      // than spin; the poll cadence retries later.
      exhausted_->Add();
      break;
    }
    total_freed += freed;
    spilled_bytes_->Add(freed);
  }
  active_->Set(0);
  return total_freed;
}

void PressureBroker::ThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, options_.poll_period,
                 [this] { return stop_ || pending_; });
    if (stop_) break;
    bool had_signal = pending_;
    pending_ = false;
    lock.unlock();
    if (had_signal || budget_->above_high_water()) {
      SpillPass();
    }
    lock.lock();
  }
}

}  // namespace resource
}  // namespace poly
