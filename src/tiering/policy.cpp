#include "tiering/policy.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace poly::tiering {

const char* ResidencyName(Residency residency) {
  switch (residency) {
    case Residency::kHot: return "hot";
    case Residency::kWarm: return "warm";
    case Residency::kCold: return "cold";
  }
  return "?";
}

const char* TierActionName(TierAction action) {
  switch (action) {
    case TierAction::kKeep: return "keep";
    case TierAction::kPromote: return "promote";
    case TierAction::kDemote: return "demote";
    case TierAction::kPromoteFromCold: return "promote-from-cold";
    case TierAction::kDemoteToCold: return "demote-to-cold";
    case TierAction::kDeferredBudget: return "deferred-budget";
    case TierAction::kDeferredCooldown: return "deferred-cooldown";
  }
  return "?";
}

namespace {

std::string FormatHeat(double h) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", h);
  return buf;
}

/// Target residency of the decided action (what the move is toward).
Residency TargetOf(TierAction action, Residency from) {
  switch (action) {
    case TierAction::kPromote: return Residency::kHot;
    case TierAction::kDemote: return Residency::kWarm;
    case TierAction::kPromoteFromCold: return Residency::kWarm;
    case TierAction::kDemoteToCold: return Residency::kCold;
    default: return from;
  }
}

}  // namespace

TieringPolicy::TieringPolicy(Options opts) : opts_(opts) {
  // Each hysteresis band requires promote > demote; an inverted band would
  // move the same partition back and forth every epoch (partially masked by
  // cooldown). Normalized in every build, not assert()ed — NDEBUG would
  // compile the check out and ship the thrash.
  if (!(opts_.promote_threshold > opts_.demote_threshold)) {
    opts_.demote_threshold = opts_.promote_threshold;
  }
  if (!(opts_.cold_promote_threshold > opts_.cold_demote_threshold)) {
    opts_.cold_demote_threshold = opts_.cold_promote_threshold;
  }
  // An unpriced (or nonsensical negative) cold factor meters raw bytes.
  if (!(opts_.cold_move_cost_factor > 0.0)) opts_.cold_move_cost_factor = 1.0;
}

uint64_t TieringPolicy::PricedBytes(uint64_t bytes, Residency from,
                                    Residency to) const {
  if (from != Residency::kCold && to != Residency::kCold) return bytes;
  double priced = static_cast<double>(bytes) * opts_.cold_move_cost_factor;
  return static_cast<uint64_t>(std::llround(priced));
}

std::vector<TieringDecision> TieringPolicy::Decide(
    uint64_t epoch, const std::vector<PartitionState>& states) const {
  std::vector<TieringDecision> wants_promote, wants_demote, rest;

  for (const PartitionState& s : states) {
    TieringDecision d;
    d.partition = s.partition;
    d.from = s.residency;
    d.bytes = s.bytes;
    d.epoch = epoch;
    double eff = s.heat - (s.rule_aged ? opts_.aged_bias : 0.0);
    if (eff < 0.0) eff = 0.0;
    d.effective_heat = eff;

    bool wants_move = false;
    switch (s.residency) {
      case Residency::kHot:
        if (eff < opts_.demote_threshold) {
          d.action = TierAction::kDemote;
          d.reason = "heat " + FormatHeat(eff) + " < demote threshold " +
                     FormatHeat(opts_.demote_threshold) +
                     (s.rule_aged ? " (rule-aged, bias applied)" : "");
          wants_move = true;
        }
        break;
      case Residency::kWarm:
        if (eff >= opts_.promote_threshold) {
          d.action = TierAction::kPromote;
          d.reason = "heat " + FormatHeat(eff) + " >= promote threshold " +
                     FormatHeat(opts_.promote_threshold);
          wants_move = true;
        } else if (eff < opts_.cold_demote_threshold) {
          d.action = TierAction::kDemoteToCold;
          d.reason = "heat " + FormatHeat(eff) + " < cold-demote threshold " +
                     FormatHeat(opts_.cold_demote_threshold) +
                     (s.rule_aged ? " (rule-aged, bias applied)" : "");
          wants_move = true;
        }
        break;
      case Residency::kCold:
        if (eff >= opts_.promote_threshold) {
          // Hot enough to skip the warm stopover entirely: a cold partition
          // whose heat clears the HOT band pages straight into memory.
          d.action = TierAction::kPromote;
          d.reason = "heat " + FormatHeat(eff) + " >= promote threshold " +
                     FormatHeat(opts_.promote_threshold) + " (from cold)";
          wants_move = true;
        } else if (eff >= opts_.cold_promote_threshold) {
          d.action = TierAction::kPromoteFromCold;
          d.reason = "heat " + FormatHeat(eff) + " >= cold-promote threshold " +
                     FormatHeat(opts_.cold_promote_threshold);
          wants_move = true;
        }
        break;
    }
    if (!wants_move) {
      d.action = TierAction::kKeep;
      d.reason = std::string(ResidencyName(s.residency)) + ", heat " +
                 FormatHeat(eff) + " inside band";
    }

    if (wants_move) {
      // Each band has its own cooldown; any recent move (either boundary)
      // starts the clock, so a partition can never chain hot->warm->cold
      // faster than the cold band's cooldown allows.
      Residency target = TargetOf(d.action, s.residency);
      bool cold_boundary =
          s.residency == Residency::kCold || target == Residency::kCold;
      uint64_t cooldown =
          cold_boundary ? opts_.cold_cooldown_epochs : opts_.cooldown_epochs;
      if (s.last_move_epoch != 0 && cooldown > 0 &&
          epoch < s.last_move_epoch + cooldown) {
        d.reason = std::string("wanted ") + TierActionName(d.action) +
                   " but moved at epoch " + std::to_string(s.last_move_epoch) +
                   " (" + (cold_boundary ? "cold-band cooldown " : "cooldown ") +
                   std::to_string(cooldown) + ")";
        d.action = TierAction::kDeferredCooldown;
        wants_move = false;
      }
    }

    if (d.action == TierAction::kPromote ||
        d.action == TierAction::kPromoteFromCold) {
      wants_promote.push_back(std::move(d));
    } else if (d.action == TierAction::kDemote ||
               d.action == TierAction::kDemoteToCold) {
      wants_demote.push_back(std::move(d));
    } else {
      rest.push_back(std::move(d));
    }
  }

  // Budget admission order: hottest promotions first (warm->hot before
  // cold->warm at equal heat), then coldest demotions first (hot->warm
  // before warm->cold at equal heat) — hot data earns memory before cold
  // data is evicted, and the cheapest boundary moves first on ties.
  auto promote_rank = [](const TieringDecision& d) {
    return d.action == TierAction::kPromote ? 0 : 1;
  };
  auto demote_rank = [](const TieringDecision& d) {
    return d.action == TierAction::kDemote ? 0 : 1;
  };
  std::sort(wants_promote.begin(), wants_promote.end(),
            [&](const TieringDecision& a, const TieringDecision& b) {
              if (a.effective_heat != b.effective_heat)
                return a.effective_heat > b.effective_heat;
              if (promote_rank(a) != promote_rank(b))
                return promote_rank(a) < promote_rank(b);
              return a.partition < b.partition;
            });
  std::sort(wants_demote.begin(), wants_demote.end(),
            [&](const TieringDecision& a, const TieringDecision& b) {
              if (a.effective_heat != b.effective_heat)
                return a.effective_heat < b.effective_heat;
              if (demote_rank(a) != demote_rank(b))
                return demote_rank(a) < demote_rank(b);
              return a.partition < b.partition;
            });
  std::sort(rest.begin(), rest.end(),
            [](const TieringDecision& a, const TieringDecision& b) {
              return a.partition < b.partition;
            });

  uint64_t budget_left = opts_.epoch_budget_bytes;
  auto meter = [&](TieringDecision& d) {
    uint64_t priced = PricedBytes(d.bytes, d.from, TargetOf(d.action, d.from));
    if (opts_.epoch_budget_bytes == 0) {  // unlimited
      d.priced_bytes = priced;
      return;
    }
    if (priced <= budget_left) {
      budget_left -= priced;
      d.priced_bytes = priced;
    } else {
      d.reason = std::string("wanted ") + TierActionName(d.action) +
                 " but epoch budget exhausted (" + std::to_string(priced) +
                 "B priced move, " + std::to_string(budget_left) + "B left)";
      d.action = TierAction::kDeferredBudget;
    }
  };

  std::vector<TieringDecision> out;
  out.reserve(states.size());
  for (auto& d : wants_promote) {
    meter(d);
    out.push_back(std::move(d));
  }
  for (auto& d : wants_demote) {
    meter(d);
    out.push_back(std::move(d));
  }
  for (auto& d : rest) out.push_back(std::move(d));
  return out;
}

}  // namespace poly::tiering
