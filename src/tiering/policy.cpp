#include "tiering/policy.h"

#include <algorithm>
#include <cstdio>

namespace poly::tiering {

const char* TierActionName(TierAction action) {
  switch (action) {
    case TierAction::kKeep: return "keep";
    case TierAction::kPromote: return "promote";
    case TierAction::kDemote: return "demote";
    case TierAction::kDeferredBudget: return "deferred-budget";
    case TierAction::kDeferredCooldown: return "deferred-cooldown";
  }
  return "?";
}

namespace {

std::string FormatHeat(double h) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", h);
  return buf;
}

}  // namespace

TieringPolicy::TieringPolicy(Options opts) : opts_(opts) {
  // The hysteresis band requires promote_threshold > demote_threshold; an
  // inverted band would demote and re-promote the same partition every
  // epoch (partially masked by cooldown). Normalized in every build, not
  // assert()ed — NDEBUG would compile the check out and ship the thrash.
  if (!(opts_.promote_threshold > opts_.demote_threshold)) {
    opts_.demote_threshold = opts_.promote_threshold;
  }
}

std::vector<TieringDecision> TieringPolicy::Decide(
    uint64_t epoch, const std::vector<PartitionState>& states) const {
  std::vector<TieringDecision> wants_promote, wants_demote, rest;

  for (const PartitionState& s : states) {
    TieringDecision d;
    d.partition = s.partition;
    d.bytes = s.bytes;
    d.epoch = epoch;
    double eff = s.heat - (s.rule_aged ? opts_.aged_bias : 0.0);
    if (eff < 0.0) eff = 0.0;
    d.effective_heat = eff;

    bool wants_move = false;
    if (!s.resident && eff >= opts_.promote_threshold) {
      d.action = TierAction::kPromote;
      d.reason = "heat " + FormatHeat(eff) + " >= promote threshold " +
                 FormatHeat(opts_.promote_threshold);
      wants_move = true;
    } else if (s.resident && eff < opts_.demote_threshold) {
      d.action = TierAction::kDemote;
      d.reason = "heat " + FormatHeat(eff) + " < demote threshold " +
                 FormatHeat(opts_.demote_threshold) +
                 (s.rule_aged ? " (rule-aged, bias applied)" : "");
      wants_move = true;
    } else {
      d.action = TierAction::kKeep;
      d.reason = s.resident
                     ? "resident, heat " + FormatHeat(eff) + " inside band"
                     : "demoted, heat " + FormatHeat(eff) + " inside band";
    }

    if (wants_move && s.last_move_epoch != 0 && opts_.cooldown_epochs > 0 &&
        epoch < s.last_move_epoch + opts_.cooldown_epochs) {
      d.reason = std::string("wanted ") + TierActionName(d.action) +
                 " but moved at epoch " + std::to_string(s.last_move_epoch) +
                 " (cooldown " + std::to_string(opts_.cooldown_epochs) + ")";
      d.action = TierAction::kDeferredCooldown;
      wants_move = false;
    }

    if (d.action == TierAction::kPromote) {
      wants_promote.push_back(std::move(d));
    } else if (d.action == TierAction::kDemote) {
      wants_demote.push_back(std::move(d));
    } else {
      rest.push_back(std::move(d));
    }
  }

  // Hottest promotions first, coldest demotions first: the budget admits
  // the moves with the most placement value.
  std::sort(wants_promote.begin(), wants_promote.end(),
            [](const TieringDecision& a, const TieringDecision& b) {
              if (a.effective_heat != b.effective_heat)
                return a.effective_heat > b.effective_heat;
              return a.partition < b.partition;
            });
  std::sort(wants_demote.begin(), wants_demote.end(),
            [](const TieringDecision& a, const TieringDecision& b) {
              if (a.effective_heat != b.effective_heat)
                return a.effective_heat < b.effective_heat;
              return a.partition < b.partition;
            });
  std::sort(rest.begin(), rest.end(),
            [](const TieringDecision& a, const TieringDecision& b) {
              return a.partition < b.partition;
            });

  uint64_t budget_left = opts_.epoch_budget_bytes;
  auto meter = [&](TieringDecision& d) {
    if (opts_.epoch_budget_bytes == 0) return;  // unlimited
    if (d.bytes <= budget_left) {
      budget_left -= d.bytes;
    } else {
      d.reason = std::string("wanted ") + TierActionName(d.action) +
                 " but epoch budget exhausted (" + std::to_string(d.bytes) +
                 "B move, " + std::to_string(budget_left) + "B left)";
      d.action = TierAction::kDeferredBudget;
    }
  };

  std::vector<TieringDecision> out;
  out.reserve(states.size());
  for (auto& d : wants_promote) {
    meter(d);
    out.push_back(std::move(d));
  }
  for (auto& d : wants_demote) {
    meter(d);
    out.push_back(std::move(d));
  }
  for (auto& d : rest) out.push_back(std::move(d));
  return out;
}

}  // namespace poly::tiering
