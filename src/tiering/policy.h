#ifndef POLY_TIERING_POLICY_H_
#define POLY_TIERING_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace poly::tiering {

/// Where a partition currently lives in Figure 1's temperature pyramid:
/// hot = in-memory (catalog-resident), warm = ExtendedStorage (local disk
/// model), cold = the DFS tier (DfsTierStore over SimulatedDfs, §IV-C).
enum class Residency : uint8_t { kHot = 0, kWarm, kCold };

const char* ResidencyName(Residency residency);

/// What the policy knows about one partition when deciding placement.
struct PartitionState {
  std::string partition;
  Residency residency = Residency::kHot;
  /// True when the application aging rules classify this partition as aged
  /// (the "$aged" partition tables AgingManager maintains). Aging rules are
  /// the *application-knowledge* half of the Fig. 1 loop; heat is the
  /// observed half.
  bool rule_aged = false;
  /// Decayed heat from the AccessHeatTracker.
  double heat = 0.0;
  /// In-memory footprint (or serialized size when demoted) — the unit the
  /// migration budget meters.
  uint64_t bytes = 0;
  /// Epoch of this partition's last promote/demote; 0 = never moved.
  uint64_t last_move_epoch = 0;
};

enum class TierAction : uint8_t {
  kKeep = 0,            // inside a hysteresis band or already placed right
  kPromote,             // warm -> hot (or cold -> hot when heat clears the hot band)
  kDemote,              // hot -> warm
  kPromoteFromCold,     // cold -> warm (heat re-crossed the cold band upward)
  kDemoteToCold,        // warm -> cold (heat fell through the cold band)
  kDeferredBudget,      // wanted to move, out of epoch byte budget
  kDeferredCooldown,    // wanted to move, moved too recently (anti-thrash)
};

const char* TierActionName(TierAction action);

/// One decision with its inputs, kept for the decision log / Explain.
struct TieringDecision {
  std::string partition;
  TierAction action = TierAction::kKeep;
  /// Where the partition lived when the decision was made.
  Residency from = Residency::kHot;
  double effective_heat = 0.0;
  uint64_t bytes = 0;
  /// What the move charged against the epoch budget: raw bytes for
  /// hot<->warm moves, bytes scaled by cold_move_cost_factor for any move
  /// that crosses the DFS boundary. Zero for keeps/deferrals.
  uint64_t priced_bytes = 0;
  uint64_t epoch = 0;
  std::string reason;
};

/// Deterministic placement policy over THREE bands: pure function of
/// (epoch, states), no clock, no RNG, no I/O — the same inputs always yield
/// the same decisions, which is what makes the convergence tests exact.
///
/// Two hysteresis bands partition the heat axis:
///
///   heat >= promote_threshold          -> belongs hot
///   demote_threshold .. promote        -> hot/warm dead band (no move)
///   cold_promote .. demote_threshold   -> belongs warm
///   cold_demote .. cold_promote        -> warm/cold dead band (no move)
///   heat < cold_demote_threshold       -> belongs cold (DFS)
///
/// Thrash-resistance comes from per-band cooldowns, and foreground
/// protection from one SHARED per-epoch migration byte budget in which cold
/// moves are priced higher (cold_move_cost_factor, derived from the
/// SimulatedDfs vs ExtendedStorage byte-cost models by the daemon).
class TieringPolicy {
 public:
  struct Options {
    /// Promote a non-resident partition to hot when effective heat rises
    /// above this. Must be > demote_threshold; the gap is the hot/warm
    /// hysteresis band. An inverted pair is normalized by the constructor
    /// (demote_threshold lowered to promote_threshold — a zero-width band
    /// cannot oscillate).
    double promote_threshold = 8.0;
    /// Demote a hot partition to warm when effective heat falls below this.
    double demote_threshold = 2.0;
    /// Promote a cold partition back to warm when effective heat rises
    /// above this. Must be > cold_demote_threshold (normalized the same
    /// way); should sit at or below demote_threshold so the bands stack.
    double cold_promote_threshold = 1.0;
    /// Demote a warm partition onward to cold (DFS) when effective heat
    /// falls below this. The warm/cold band is (cold_demote, cold_promote).
    double cold_demote_threshold = 0.25;
    /// Additive bias subtracted from the effective heat of rule-aged
    /// partitions: the application said "old", so they must be this much
    /// hotter than an unaged partition to earn the same placement.
    double aged_bias = 1.0;
    /// Max PRICED bytes of promotions+demotions per epoch, shared across
    /// both bands. 0 = unlimited. Promotions are admitted before demotions
    /// (hot data earns memory before cold data is evicted), and within each
    /// group warm-boundary moves are admitted before cold-boundary moves.
    uint64_t epoch_budget_bytes = 64ull << 20;
    /// Price multiplier for any move crossing the DFS boundary (warm->cold,
    /// cold->warm, cold->hot): one cold byte costs this many budget bytes.
    /// <= 0 means "derive": the daemon replaces it with
    /// DfsTierStore::CostFactorVersus (the SimulatedDfs vs ExtendedStorage
    /// byte-cost ratio, ~3.33 at defaults) when a cold store is attached; a
    /// bare policy normalizes it to 1 (unpriced).
    double cold_move_cost_factor = 0.0;
    /// A partition that moved within the last N epochs is not moved across
    /// the hot/warm boundary again (kDeferredCooldown).
    uint64_t cooldown_epochs = 2;
    /// Same, for moves across the warm/cold boundary. Cold moves are
    /// expensive, so the default cooldown is longer.
    uint64_t cold_cooldown_epochs = 4;
  };

  TieringPolicy() : TieringPolicy(Options{}) {}
  explicit TieringPolicy(Options opts);

  /// Decides every partition. Output order: promotes hottest-first
  /// (warm->hot before cold->warm), then demotes coldest-first (hot->warm
  /// before warm->cold), then keeps/deferrals; ties broken by partition
  /// name, so the budget always admits the most valuable moves and the
  /// result is reproducible.
  std::vector<TieringDecision> Decide(uint64_t epoch,
                                      const std::vector<PartitionState>& states) const;

  /// Budget price of moving `bytes` across (`from` -> `to`): raw bytes
  /// inside the hot/warm pair, bytes * cold_move_cost_factor when either
  /// side is cold.
  uint64_t PricedBytes(uint64_t bytes, Residency from, Residency to) const;

  const Options& options() const { return opts_; }

 private:
  Options opts_;
};

}  // namespace poly::tiering

#endif  // POLY_TIERING_POLICY_H_
