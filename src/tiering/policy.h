#ifndef POLY_TIERING_POLICY_H_
#define POLY_TIERING_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace poly::tiering {

/// What the policy knows about one partition when deciding placement.
struct PartitionState {
  std::string partition;
  /// True = lives in hot memory (catalog-resident); false = warm/cold tier.
  bool resident = true;
  /// True when the application aging rules classify this partition as aged
  /// (the "$aged" partition tables AgingManager maintains). Aging rules are
  /// the *application-knowledge* half of the Fig. 1 loop; heat is the
  /// observed half.
  bool rule_aged = false;
  /// Decayed heat from the AccessHeatTracker.
  double heat = 0.0;
  /// In-memory footprint (or serialized size when demoted) — the unit the
  /// migration budget meters.
  uint64_t bytes = 0;
  /// Epoch of this partition's last promote/demote; 0 = never moved.
  uint64_t last_move_epoch = 0;
};

enum class TierAction : uint8_t {
  kKeep = 0,            // inside the hysteresis band or already placed right
  kPromote,             // warm/cold -> hot
  kDemote,              // hot -> warm
  kDeferredBudget,      // wanted to move, out of epoch byte budget
  kDeferredCooldown,    // wanted to move, moved too recently (anti-thrash)
};

const char* TierActionName(TierAction action);

/// One decision with its inputs, kept for the decision log / Explain.
struct TieringDecision {
  std::string partition;
  TierAction action = TierAction::kKeep;
  double effective_heat = 0.0;
  uint64_t bytes = 0;
  uint64_t epoch = 0;
  std::string reason;
};

/// Deterministic placement policy: pure function of (epoch, states), no
/// clock, no RNG, no I/O — the same inputs always yield the same decisions,
/// which is what makes the convergence tests exact. Hysteresis comes from
/// two thresholds (promote above, demote below; the gap is the dead band),
/// thrash-resistance from a per-partition cooldown, and foreground
/// protection from a per-epoch migration byte budget.
class TieringPolicy {
 public:
  struct Options {
    /// Promote a non-resident partition when effective heat rises above
    /// this. Must be > demote_threshold; the gap is the hysteresis band.
    /// An inverted pair is normalized by the constructor (demote_threshold
    /// lowered to promote_threshold — a zero-width band cannot oscillate).
    double promote_threshold = 8.0;
    /// Demote a resident partition when effective heat falls below this.
    double demote_threshold = 2.0;
    /// Additive bias subtracted from the effective heat of rule-aged
    /// partitions: the application said "old", so they must be this much
    /// hotter than an unaged partition to earn the same placement.
    double aged_bias = 1.0;
    /// Max bytes of promotions+demotions per epoch. 0 = unlimited.
    uint64_t epoch_budget_bytes = 64ull << 20;
    /// A partition that moved within the last N epochs is not moved again
    /// (kDeferredCooldown), even if its heat crossed a threshold.
    uint64_t cooldown_epochs = 2;
  };

  TieringPolicy() : TieringPolicy(Options{}) {}
  explicit TieringPolicy(Options opts);

  /// Decides every partition. Output order: promotes hottest-first, then
  /// demotes coldest-first, then keeps/deferrals; ties broken by partition
  /// name, so the budget always admits the most valuable moves and the
  /// result is reproducible.
  std::vector<TieringDecision> Decide(uint64_t epoch,
                                      const std::vector<PartitionState>& states) const;

  const Options& options() const { return opts_; }

 private:
  Options opts_;
};

}  // namespace poly::tiering

#endif  // POLY_TIERING_POLICY_H_
