#ifndef POLY_TIERING_DAEMON_H_
#define POLY_TIERING_DAEMON_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "aging/aging.h"
#include "aging/extended_storage.h"
#include "common/metrics.h"
#include "common/status.h"
#include "hadoop/dfs_tier_store.h"
#include "resource/pressure.h"
#include "storage/access_hooks.h"
#include "storage/database.h"
#include "tiering/heat.h"
#include "tiering/policy.h"

namespace poly::tiering {

/// What one epoch did — returned by RunEpoch so tests and tools can assert
/// on exact behavior without scraping metrics.
struct EpochReport {
  uint64_t epoch = 0;
  /// Arrivals into the hot tier (from warm, or straight from cold).
  uint64_t promotes = 0;
  /// Departures hot -> warm.
  uint64_t demotes = 0;
  /// Moves out of the cold tier (cold -> warm and cold -> hot).
  uint64_t cold_promotes = 0;
  /// Moves warm -> cold.
  uint64_t cold_demotes = 0;
  uint64_t deferred_budget = 0;
  uint64_t deferred_cooldown = 0;
  /// Raw bytes moved, and the same bytes as the budget priced them
  /// (cold-boundary moves scaled by cold_move_cost_factor).
  uint64_t moved_bytes = 0;
  uint64_t priced_bytes = 0;
  uint64_t rows_aged = 0;  ///< from the aging pass, when run_aging is on
  std::vector<TieringDecision> decisions;
};

/// Background promotion/demotion daemon — the service that closes the
/// paper's Fig. 1 loop. Owns an AccessHeatTracker (attached to the Database
/// as its AccessObserver) and a TieringPolicy; each epoch it optionally
/// runs the application aging rules, folds observed heat, asks the policy
/// for decisions, and executes them across up to three bands: hot (catalog)
/// <-> warm (ExtendedStorage) <-> cold (DfsTierStore, when attached). It
/// also implements TierResolver: a query hitting a demoted partition
/// promotes it back on demand (a "hot-tier miss") — warm partitions reload
/// from ExtendedStorage, cold ones demand-page in from DFS.
///
/// Clocking: `RunEpoch()` is synchronous and deterministic — tests drive it
/// directly (the virtual clock is simply the epoch counter). `Start(period)`
/// spawns the wall-clock background thread for production use; `Stop()`
/// joins it. Both may be mixed; epochs are serialized internally.
///
/// Safety with concurrent MVCC readers: executors pin partition tables
/// (`Database::PinTable`), so a demotion mid-scan removes the catalog entry
/// but the pinned table object survives until the scan drops it. That same
/// argument covers cold demotion: warm -> cold only touches serialized
/// payloads, and a cold page-in hands back a pinned reference taken under
/// the movement lock (DESIGN.md §11.4). Managed partitions are expected to
/// be read-mostly (aged history); demoting a partition with in-flight
/// *writes* would lose them, same as a manual `ExtendedStorage::Demote`.
class TieringDaemon : public TierResolver {
 public:
  struct Options {
    AccessHeatTracker::Options heat;
    TieringPolicy::Options policy;
    /// Run AgingManager::RunAging() at the start of every epoch (only if an
    /// AgingManager was supplied): rule-driven aging and heat-driven
    /// placement advance on the same cadence.
    bool run_aging = false;
    /// Background thread epoch period for Start() with no argument.
    std::chrono::milliseconds period{1000};
    /// Ring capacity of the queryable decision log.
    size_t decision_log_capacity = 512;
  };

  /// Attaches itself to `db` as access observer + tier resolver. `storage`
  /// must outlive the daemon; `aging` may be null (heat-only operation).
  TieringDaemon(Database* db, ExtendedStorage* storage)
      : TieringDaemon(db, storage, nullptr, Options(), nullptr) {}
  TieringDaemon(Database* db, ExtendedStorage* storage, Options opts,
                AgingManager* aging = nullptr)
      : TieringDaemon(db, storage, nullptr, opts, aging) {}
  /// Three-band operation: also attaches the cold (DFS) tier. `cold` may be
  /// null — the daemon then disables the warm->cold band entirely and runs
  /// two-band, exactly as before. With a cold store attached, a policy
  /// cold_move_cost_factor of 0 ("derive") is replaced by
  /// DfsTierStore::CostFactorVersus(storage->options()).
  TieringDaemon(Database* db, ExtendedStorage* storage, DfsTierStore* cold,
                Options opts, AgingManager* aging = nullptr);
  ~TieringDaemon() override;

  TieringDaemon(const TieringDaemon&) = delete;
  TieringDaemon& operator=(const TieringDaemon&) = delete;

  /// Registers a partition table (by catalog name) for placement
  /// management. Partitions of aging rules are discovered automatically;
  /// Manage is for everything else (e.g. hash partitions).
  void Manage(const std::string& partition);
  void Unmanage(const std::string& partition);
  std::vector<std::string> Managed() const;

  /// One synchronous epoch: [aging] -> fold heat -> decide -> execute.
  StatusOr<EpochReport> RunEpoch();

  /// Background thread control. Start is idempotent; Stop joins.
  void Start();
  void Start(std::chrono::milliseconds period);
  void Stop();
  bool running() const;

  /// TierResolver: promote-on-demand for demoted partitions, from warm OR
  /// cold. Returns a pinned reference taken under the movement lock, so the
  /// caller's scan survives an immediate re-demotion.
  StatusOr<std::shared_ptr<ColumnTable>> ResolveMissing(
      const std::string& table) override;

  /// Out-of-band eviction under memory pressure (DESIGN.md §13.3): demotes
  /// the coldest hot managed partitions — straight through to the cold
  /// (DFS) tier when one is attached — until ~`bytes_to_free` of hot bytes
  /// are gone or no evictable partition remains. Returns hot bytes freed.
  /// Ignores the policy's migration budget and cooldowns: pressure is the
  /// one caller that may not be deferred. Safe against concurrent epochs
  /// and miss-promotes (movement lock per partition); callable from the
  /// PressureBroker thread or synchronously from tests.
  uint64_t SpillForPressure(uint64_t bytes_to_free);

  /// Installs SpillForPressure as `broker`'s spill target. Stop the broker
  /// before destroying this daemon.
  void BindPressureBroker(resource::PressureBroker* broker);

  /// "Why is this partition hot/warm/cold": residency, current heat,
  /// lifetime access counts, per-column heat when tracked, and the last
  /// policy decision with its reason.
  std::string Explain(const std::string& partition) const;

  /// Most recent decisions, newest last (bounded ring).
  std::vector<TieringDecision> DecisionLog() const;

  AccessHeatTracker& heat() { return heat_; }
  const TieringPolicy& policy() const { return policy_; }
  DfsTierStore* cold_store() const { return cold_; }

 private:
  /// Partitions to consider this epoch: explicitly managed plus the aged
  /// partitions of every aging rule that exist somewhere (hot, warm, or
  /// cold).
  std::vector<std::string> CandidatePartitions() const;
  void RecordDecision(const TieringDecision& decision);

  Database* db_;
  ExtendedStorage* storage_;
  DfsTierStore* cold_;  // may be null: two-band operation
  AgingManager* aging_;
  Options opts_;
  AccessHeatTracker heat_;
  TieringPolicy policy_;

  mutable std::mutex state_mu_;  // managed set + last-move epochs
  std::set<std::string> managed_;
  std::unordered_map<std::string, uint64_t> last_move_epoch_;

  std::mutex epoch_mu_;  // serializes RunEpoch bodies
  std::mutex move_mu_;   // serializes tier movement (epochs vs miss promotes)

  mutable std::mutex log_mu_;
  std::deque<TieringDecision> decision_log_;
  std::unordered_map<std::string, TieringDecision> last_decision_;

  mutable std::mutex thread_mu_;
  std::condition_variable thread_cv_;
  std::thread thread_;
  bool stop_requested_ = false;

  // Cached metric pointers (tier.daemon.*) in the Database's registry
  // (metrics::Default() unless the embedder installed its own before
  // constructing the daemon).
  metrics::Counter* m_epochs_;
  metrics::Counter* m_promotes_;
  metrics::Counter* m_demotes_;
  metrics::Counter* m_cold_promotes_;
  metrics::Counter* m_cold_demotes_;
  metrics::Counter* m_moved_bytes_;
  metrics::Counter* m_priced_bytes_;
  metrics::Counter* m_deferred_budget_;
  metrics::Counter* m_deferred_cooldown_;
  metrics::Counter* m_miss_promotes_;
  metrics::Counter* m_epoch_errors_;
  metrics::Counter* m_pressure_spills_;
  metrics::Counter* m_pressure_spilled_bytes_;
  metrics::Histogram* m_epoch_nanos_;
};

}  // namespace poly::tiering

#endif  // POLY_TIERING_DAEMON_H_
