#include "tiering/daemon.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace poly::tiering {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool IsAgedPartition(const std::string& name) {
  static constexpr char kSuffix[] = "$aged";
  static constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  return name.size() > kSuffixLen &&
         name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) == 0;
}

/// Policy options as the daemon actually runs them. Without a cold store
/// the warm->cold band is disabled outright (effective heat is clamped at
/// zero, so a negative threshold can never fire) — the daemon degrades to
/// exactly the old two-band behavior. With one, a cost factor of 0
/// ("derive") becomes the measured cold/warm byte-cost ratio.
TieringPolicy::Options EffectivePolicy(TieringPolicy::Options p,
                                       ExtendedStorage* warm,
                                       DfsTierStore* cold) {
  if (cold == nullptr) {
    p.cold_demote_threshold = -1.0;
    if (p.cold_move_cost_factor <= 0.0) p.cold_move_cost_factor = 1.0;
  } else if (p.cold_move_cost_factor <= 0.0) {
    p.cold_move_cost_factor = cold->CostFactorVersus(warm->options());
  }
  return p;
}

}  // namespace

TieringDaemon::TieringDaemon(Database* db, ExtendedStorage* storage,
                             DfsTierStore* cold, Options opts, AgingManager* aging)
    : db_(db),
      storage_(storage),
      cold_(cold),
      aging_(aging),
      opts_(opts),
      heat_(opts.heat),
      policy_(EffectivePolicy(opts.policy, storage, cold)) {
  opts_.policy = policy_.options();  // keep opts_ consistent with what runs
  metrics::Registry& reg = *db->metrics();
  m_epochs_ = reg.counter("tier.daemon.epochs");
  m_promotes_ = reg.counter("tier.daemon.promotes");
  m_demotes_ = reg.counter("tier.daemon.demotes");
  m_cold_promotes_ = reg.counter("tier.daemon.cold_promotes");
  m_cold_demotes_ = reg.counter("tier.daemon.cold_demotes");
  m_moved_bytes_ = reg.counter("tier.daemon.moved_bytes");
  m_priced_bytes_ = reg.counter("tier.daemon.priced_bytes");
  m_deferred_budget_ = reg.counter("tier.daemon.deferred_budget");
  m_deferred_cooldown_ = reg.counter("tier.daemon.deferred_cooldown");
  m_miss_promotes_ = reg.counter("tier.daemon.miss_promotes");
  m_epoch_errors_ = reg.counter("tier.daemon.epoch_errors");
  m_pressure_spills_ = reg.counter("tier.daemon.pressure_spills");
  m_pressure_spilled_bytes_ = reg.counter("tier.daemon.pressure_spilled_bytes");
  m_epoch_nanos_ = reg.histogram("tier.daemon.epoch_nanos");
  db_->set_access_observer(&heat_);
  db_->set_tier_resolver(this);
}

TieringDaemon::~TieringDaemon() {
  Stop();
  // Detach only if still ours: a later daemon may have replaced us.
  if (db_->access_observer() == &heat_) db_->set_access_observer(nullptr);
  if (db_->tier_resolver() == this) db_->set_tier_resolver(nullptr);
}

void TieringDaemon::Manage(const std::string& partition) {
  std::lock_guard<std::mutex> lock(state_mu_);
  managed_.insert(partition);
}

void TieringDaemon::Unmanage(const std::string& partition) {
  std::lock_guard<std::mutex> lock(state_mu_);
  managed_.erase(partition);
}

std::vector<std::string> TieringDaemon::Managed() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return {managed_.begin(), managed_.end()};
}

std::vector<std::string> TieringDaemon::CandidatePartitions() const {
  std::set<std::string> names;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    names = managed_;
  }
  if (aging_ != nullptr) {
    for (const AgingRule& rule : aging_->rules()) {
      std::string aged = AgingManager::AgedName(rule.table);
      if (db_->GetTable(aged).ok() || storage_->Contains(aged) ||
          (cold_ != nullptr && cold_->Contains(aged))) {
        names.insert(aged);
      }
    }
  }
  return {names.begin(), names.end()};
}

StatusOr<EpochReport> TieringDaemon::RunEpoch() {
  std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
  uint64_t started = NowNanos();
  EpochReport report;

  if (opts_.run_aging && aging_ != nullptr) {
    POLY_ASSIGN_OR_RETURN(AgingStats aged, aging_->RunAging());
    report.rows_aged = aged.rows_aged;
  }

  report.epoch = heat_.AdvanceEpoch();

  std::vector<PartitionState> states;
  for (const std::string& name : CandidatePartitions()) {
    PartitionState s;
    s.partition = name;
    s.rule_aged = IsAgedPartition(name);
    s.heat = heat_.HeatOf(name);
    auto resident = db_->GetTable(name);
    if (resident.ok()) {
      s.residency = Residency::kHot;
      s.bytes = (*resident)->MemoryBytes();
    } else if (storage_->Contains(name)) {
      s.residency = Residency::kWarm;
      s.bytes = storage_->BytesOf(name);
    } else if (cold_ != nullptr && cold_->Contains(name)) {
      s.residency = Residency::kCold;
      s.bytes = cold_->BytesOf(name);
    } else {
      continue;  // unknown this epoch; nothing the daemon can move
    }
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      auto it = last_move_epoch_.find(name);
      s.last_move_epoch = it == last_move_epoch_.end() ? 0 : it->second;
    }
    states.push_back(std::move(s));
  }

  report.decisions = policy_.Decide(report.epoch, states);

  auto record_move = [&](TieringDecision& d) {
    report.moved_bytes += d.bytes;
    report.priced_bytes += d.priced_bytes;
    m_moved_bytes_->Add(d.bytes);
    m_priced_bytes_->Add(d.priced_bytes);
    std::lock_guard<std::mutex> lock(state_mu_);
    last_move_epoch_[d.partition] = report.epoch;
  };

  for (TieringDecision& d : report.decisions) {
    switch (d.action) {
      case TierAction::kPromote: {
        std::lock_guard<std::mutex> move_lock(move_mu_);
        if (db_->GetTable(d.partition).ok()) break;  // miss-promoted already
        Status moved = Status::OK();
        bool from_cold = false;
        if (storage_->Contains(d.partition)) {
          moved = storage_->Promote(db_, d.partition).status();
        } else if (cold_ != nullptr && cold_->Contains(d.partition)) {
          from_cold = true;
          moved = cold_->PageIn(db_, d.partition).status();
        } else {
          moved = Status::NotFound("'" + d.partition + "' in no tier");
        }
        if (!moved.ok()) {
          m_epoch_errors_->Add(1);
          d.reason += " [move failed: " + moved.ToString() + "]";
          break;
        }
        report.promotes++;
        m_promotes_->Add(1);
        if (from_cold) {
          report.cold_promotes++;
          m_cold_promotes_->Add(1);
        }
        record_move(d);
        break;
      }
      case TierAction::kPromoteFromCold: {
        std::lock_guard<std::mutex> move_lock(move_mu_);
        if (cold_ == nullptr || !cold_->Contains(d.partition)) break;
        Status moved = cold_->Raise(storage_, d.partition);
        if (!moved.ok()) {
          m_epoch_errors_->Add(1);
          d.reason += " [move failed: " + moved.ToString() + "]";
          break;
        }
        report.cold_promotes++;
        m_cold_promotes_->Add(1);
        record_move(d);
        break;
      }
      case TierAction::kDemote: {
        std::lock_guard<std::mutex> move_lock(move_mu_);
        if (!db_->GetTable(d.partition).ok()) break;  // already gone
        Status demoted = storage_->Demote(db_, d.partition);
        if (!demoted.ok()) {
          m_epoch_errors_->Add(1);
          d.reason += " [move failed: " + demoted.ToString() + "]";
          break;
        }
        report.demotes++;
        m_demotes_->Add(1);
        record_move(d);
        break;
      }
      case TierAction::kDemoteToCold: {
        std::lock_guard<std::mutex> move_lock(move_mu_);
        // A hot-tier miss may have pulled it back up while we decided; the
        // hot check is belt-and-braces — sinking anything while a live hot
        // copy exists would fork the partition into two diverging copies.
        if (cold_ == nullptr || db_->GetTable(d.partition).ok() ||
            !storage_->Contains(d.partition)) {
          break;
        }
        Status sunk = cold_->Sink(storage_, d.partition);
        if (!sunk.ok()) {
          m_epoch_errors_->Add(1);
          d.reason += " [move failed: " + sunk.ToString() + "]";
          break;
        }
        report.cold_demotes++;
        m_cold_demotes_->Add(1);
        record_move(d);
        break;
      }
      case TierAction::kDeferredBudget:
        report.deferred_budget++;
        m_deferred_budget_->Add(1);
        break;
      case TierAction::kDeferredCooldown:
        report.deferred_cooldown++;
        m_deferred_cooldown_->Add(1);
        break;
      case TierAction::kKeep:
        break;
    }
    RecordDecision(d);
  }

  m_epochs_->Add(1);
  m_epoch_nanos_->Observe(NowNanos() - started);
  return report;
}

StatusOr<std::shared_ptr<ColumnTable>> TieringDaemon::ResolveMissing(
    const std::string& table) {
  // No pre-lock tier check: a partition mid-sink (warm -> cold) is briefly
  // in neither store, and deciding NotFound on that snapshot would fail a
  // query that only needed to wait for the move to finish. Resolve entirely
  // under the movement lock instead.
  std::lock_guard<std::mutex> move_lock(move_mu_);
  // A concurrent query (or an epoch) may have promoted it while we waited.
  // Pin under the lock: no demotion can run until we return the reference.
  if (auto resident = db_->PinTable(table); resident.ok()) return resident;
  Residency from = Residency::kWarm;
  uint64_t bytes = 0;
  if (storage_->Contains(table)) {
    bytes = storage_->BytesOf(table);
    POLY_RETURN_IF_ERROR(storage_->Promote(db_, table).status());
  } else if (cold_ != nullptr && cold_->Contains(table)) {
    from = Residency::kCold;
    bytes = cold_->BytesOf(table);
    POLY_RETURN_IF_ERROR(cold_->PageIn(db_, table).status());
  } else {
    return Status::NotFound("tiering: '" + table + "' not in warm or cold storage");
  }
  POLY_ASSIGN_OR_RETURN(std::shared_ptr<ColumnTable> promoted,
                        db_->PinTable(table));
  m_miss_promotes_->Add(1);
  if (from == Residency::kCold) m_cold_promotes_->Add(1);
  {
    // On-demand promotion is a tier move: start the cooldown clock so the
    // next epoch does not immediately demote it back.
    std::lock_guard<std::mutex> lock(state_mu_);
    uint64_t epoch = heat_.epoch();
    last_move_epoch_[table] = epoch == 0 ? 1 : epoch;
    managed_.insert(table);  // it came from our storage; keep managing it
  }
  TieringDecision d;
  d.partition = table;
  d.action = TierAction::kPromote;
  d.from = from;
  d.effective_heat = heat_.HeatOf(table);
  d.bytes = bytes;
  d.priced_bytes = policy_.PricedBytes(bytes, from, Residency::kHot);
  d.epoch = heat_.epoch();
  d.reason = from == Residency::kCold
                 ? "hot-tier miss: demand-paged in from cold (DFS) by a query"
                 : "hot-tier miss: promoted on demand by a query";
  RecordDecision(d);
  return promoted;
}

uint64_t TieringDaemon::SpillForPressure(uint64_t bytes_to_free) {
  if (bytes_to_free == 0) return 0;

  // Coldest-first victim list: hot managed partitions ordered by ascending
  // heat. Snapshot outside the movement lock; each eviction re-checks
  // residency under it.
  struct Victim {
    std::string partition;
    double heat;
  };
  std::vector<Victim> victims;
  for (const std::string& name : CandidatePartitions()) {
    if (db_->GetTable(name).ok()) {
      victims.push_back({name, heat_.HeatOf(name)});
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) { return a.heat < b.heat; });

  uint64_t freed = 0;
  for (const Victim& v : victims) {
    if (freed >= bytes_to_free) break;
    std::lock_guard<std::mutex> move_lock(move_mu_);
    auto resident = db_->GetTable(v.partition);
    if (!resident.ok()) continue;  // raced an epoch demote; already gone
    uint64_t bytes = (*resident)->MemoryBytes();
    Status demoted = storage_->Demote(db_, v.partition);
    if (!demoted.ok()) {
      m_epoch_errors_->Add(1);
      continue;
    }
    freed += bytes;
    m_demotes_->Add(1);
    m_moved_bytes_->Add(bytes);

    TieringDecision d;
    d.partition = v.partition;
    d.action = TierAction::kDemote;
    d.from = Residency::kHot;
    d.effective_heat = v.heat;
    d.bytes = bytes;
    d.priced_bytes = policy_.PricedBytes(bytes, Residency::kHot, Residency::kWarm);
    d.epoch = heat_.epoch();
    d.reason = "memory pressure: spilled to free " +
               std::to_string(bytes_to_free) + "B (coldest hot partition)";

    // Spill-to-cold: pressure evictions are the "this memory is needed NOW"
    // path, so push the victim all the way down when a cold store exists —
    // a warm stopover would just move the problem to the next spill.
    if (cold_ != nullptr) {
      uint64_t warm_bytes = storage_->BytesOf(v.partition);
      Status sunk = cold_->Sink(storage_, v.partition);
      if (sunk.ok()) {
        d.reason += " [sunk to cold]";
        m_cold_demotes_->Add(1);
        m_moved_bytes_->Add(warm_bytes);
        d.priced_bytes +=
            policy_.PricedBytes(warm_bytes, Residency::kWarm, Residency::kCold);
      } else {
        m_epoch_errors_->Add(1);
      }
    }
    m_priced_bytes_->Add(d.priced_bytes);
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      uint64_t epoch = heat_.epoch();
      last_move_epoch_[v.partition] = epoch == 0 ? 1 : epoch;
    }
    RecordDecision(d);
  }

  if (freed > 0) {
    m_pressure_spills_->Add(1);
    m_pressure_spilled_bytes_->Add(freed);
  }
  return freed;
}

void TieringDaemon::BindPressureBroker(resource::PressureBroker* broker) {
  broker->set_spill(
      [this](uint64_t bytes) { return SpillForPressure(bytes); });
}

void TieringDaemon::RecordDecision(const TieringDecision& decision) {
  std::lock_guard<std::mutex> lock(log_mu_);
  decision_log_.push_back(decision);
  while (decision_log_.size() > opts_.decision_log_capacity) decision_log_.pop_front();
  last_decision_[decision.partition] = decision;
}

std::vector<TieringDecision> TieringDaemon::DecisionLog() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return {decision_log_.begin(), decision_log_.end()};
}

std::string TieringDaemon::Explain(const std::string& partition) const {
  const char* tier = "absent";
  if (db_->GetTable(partition).ok()) {
    tier = "hot";
  } else if (storage_->Contains(partition)) {
    tier = "warm";
  } else if (cold_ != nullptr && cold_->Contains(partition)) {
    tier = "cold";
  }
  double heat = heat_.HeatOf(partition);

  uint64_t total_scans = 0, total_points = 0;
  for (const HeatSample& s : heat_.Snapshot()) {
    if (s.partition == partition) {
      total_scans = s.total_scans;
      total_points = s.total_point_reads;
      break;
    }
  }

  char head[256];
  std::snprintf(head, sizeof(head),
                "%s: tier=%s heat=%.2f epoch=%llu scans=%llu point_reads=%llu",
                partition.c_str(), tier, heat,
                static_cast<unsigned long long>(heat_.epoch()),
                static_cast<unsigned long long>(total_scans),
                static_cast<unsigned long long>(total_points));
  std::string out = head;

  std::vector<ColumnHeatSample> cols = heat_.ColumnSnapshot(partition);
  if (!cols.empty()) {
    out += "\n  column heat:";
    for (const ColumnHeatSample& c : cols) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), " %s=%.2f", c.column.c_str(), c.heat);
      out += buf;
    }
  }

  std::lock_guard<std::mutex> lock(log_mu_);
  auto it = last_decision_.find(partition);
  if (it == last_decision_.end()) {
    out += "\n  last decision: none (never considered)";
  } else {
    const TieringDecision& d = it->second;
    char line[384];
    std::snprintf(line, sizeof(line),
                  "\n  last decision: %s at epoch %llu (from=%s heat=%.2f, %lluB) — %s",
                  TierActionName(d.action),
                  static_cast<unsigned long long>(d.epoch), ResidencyName(d.from),
                  d.effective_heat, static_cast<unsigned long long>(d.bytes),
                  d.reason.c_str());
    out += line;
  }
  return out;
}

void TieringDaemon::Start() { Start(opts_.period); }

void TieringDaemon::Start(std::chrono::milliseconds period) {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this, period] {
    std::unique_lock<std::mutex> lock(thread_mu_);
    while (!stop_requested_) {
      if (thread_cv_.wait_for(lock, period, [this] { return stop_requested_; })) {
        break;
      }
      lock.unlock();
      auto report = RunEpoch();
      if (!report.ok()) m_epoch_errors_->Add(1);
      lock.lock();
    }
  });
}

void TieringDaemon::Stop() {
  std::thread joined;
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
    joined = std::move(thread_);
  }
  thread_cv_.notify_all();
  joined.join();
}

bool TieringDaemon::running() const {
  std::lock_guard<std::mutex> lock(thread_mu_);
  return thread_.joinable();
}

}  // namespace poly::tiering
