#include "tiering/daemon.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace poly::tiering {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool IsAgedPartition(const std::string& name) {
  static constexpr char kSuffix[] = "$aged";
  static constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  return name.size() > kSuffixLen &&
         name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) == 0;
}

}  // namespace

TieringDaemon::TieringDaemon(Database* db, ExtendedStorage* storage, Options opts,
                             AgingManager* aging)
    : db_(db),
      storage_(storage),
      aging_(aging),
      opts_(opts),
      heat_(opts.heat),
      policy_(opts.policy) {
  metrics::Registry& reg = metrics::Default();
  m_epochs_ = reg.counter("tier.daemon.epochs");
  m_promotes_ = reg.counter("tier.daemon.promotes");
  m_demotes_ = reg.counter("tier.daemon.demotes");
  m_moved_bytes_ = reg.counter("tier.daemon.moved_bytes");
  m_deferred_budget_ = reg.counter("tier.daemon.deferred_budget");
  m_deferred_cooldown_ = reg.counter("tier.daemon.deferred_cooldown");
  m_miss_promotes_ = reg.counter("tier.daemon.miss_promotes");
  m_epoch_errors_ = reg.counter("tier.daemon.epoch_errors");
  m_epoch_nanos_ = reg.histogram("tier.daemon.epoch_nanos");
  db_->set_access_observer(&heat_);
  db_->set_tier_resolver(this);
}

TieringDaemon::~TieringDaemon() {
  Stop();
  // Detach only if still ours: a later daemon may have replaced us.
  if (db_->access_observer() == &heat_) db_->set_access_observer(nullptr);
  if (db_->tier_resolver() == this) db_->set_tier_resolver(nullptr);
}

void TieringDaemon::Manage(const std::string& partition) {
  std::lock_guard<std::mutex> lock(state_mu_);
  managed_.insert(partition);
}

void TieringDaemon::Unmanage(const std::string& partition) {
  std::lock_guard<std::mutex> lock(state_mu_);
  managed_.erase(partition);
}

std::vector<std::string> TieringDaemon::Managed() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return {managed_.begin(), managed_.end()};
}

std::vector<std::string> TieringDaemon::CandidatePartitions() const {
  std::set<std::string> names;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    names = managed_;
  }
  if (aging_ != nullptr) {
    for (const AgingRule& rule : aging_->rules()) {
      std::string aged = AgingManager::AgedName(rule.table);
      if (db_->GetTable(aged).ok() || storage_->Contains(aged)) {
        names.insert(aged);
      }
    }
  }
  return {names.begin(), names.end()};
}

StatusOr<EpochReport> TieringDaemon::RunEpoch() {
  std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
  uint64_t started = NowNanos();
  EpochReport report;

  if (opts_.run_aging && aging_ != nullptr) {
    POLY_ASSIGN_OR_RETURN(AgingStats aged, aging_->RunAging());
    report.rows_aged = aged.rows_aged;
  }

  report.epoch = heat_.AdvanceEpoch();

  std::vector<PartitionState> states;
  for (const std::string& name : CandidatePartitions()) {
    PartitionState s;
    s.partition = name;
    s.rule_aged = IsAgedPartition(name);
    s.heat = heat_.HeatOf(name);
    auto resident = db_->GetTable(name);
    if (resident.ok()) {
      s.resident = true;
      s.bytes = (*resident)->MemoryBytes();
    } else if (storage_->Contains(name)) {
      s.resident = false;
      s.bytes = storage_->BytesOf(name);
    } else {
      continue;  // cold/unknown this epoch; nothing the daemon can move
    }
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      auto it = last_move_epoch_.find(name);
      s.last_move_epoch = it == last_move_epoch_.end() ? 0 : it->second;
    }
    states.push_back(std::move(s));
  }

  report.decisions = policy_.Decide(report.epoch, states);

  for (TieringDecision& d : report.decisions) {
    switch (d.action) {
      case TierAction::kPromote: {
        std::lock_guard<std::mutex> move_lock(move_mu_);
        if (db_->GetTable(d.partition).ok()) break;  // miss-promoted already
        auto promoted = storage_->Promote(db_, d.partition);
        if (!promoted.ok()) {
          m_epoch_errors_->Add(1);
          d.reason += " [move failed: " + promoted.status().ToString() + "]";
          break;
        }
        report.promotes++;
        report.moved_bytes += d.bytes;
        m_promotes_->Add(1);
        m_moved_bytes_->Add(d.bytes);
        std::lock_guard<std::mutex> lock(state_mu_);
        last_move_epoch_[d.partition] = report.epoch;
        break;
      }
      case TierAction::kDemote: {
        std::lock_guard<std::mutex> move_lock(move_mu_);
        if (!db_->GetTable(d.partition).ok()) break;  // already gone
        Status demoted = storage_->Demote(db_, d.partition);
        if (!demoted.ok()) {
          m_epoch_errors_->Add(1);
          d.reason += " [move failed: " + demoted.ToString() + "]";
          break;
        }
        report.demotes++;
        report.moved_bytes += d.bytes;
        m_demotes_->Add(1);
        m_moved_bytes_->Add(d.bytes);
        std::lock_guard<std::mutex> lock(state_mu_);
        last_move_epoch_[d.partition] = report.epoch;
        break;
      }
      case TierAction::kDeferredBudget:
        report.deferred_budget++;
        m_deferred_budget_->Add(1);
        break;
      case TierAction::kDeferredCooldown:
        report.deferred_cooldown++;
        m_deferred_cooldown_->Add(1);
        break;
      case TierAction::kKeep:
        break;
    }
    RecordDecision(d);
  }

  m_epochs_->Add(1);
  m_epoch_nanos_->Observe(NowNanos() - started);
  return report;
}

StatusOr<std::shared_ptr<ColumnTable>> TieringDaemon::ResolveMissing(
    const std::string& table) {
  if (!storage_->Contains(table)) {
    return Status::NotFound("tiering: '" + table + "' not in warm storage");
  }
  std::lock_guard<std::mutex> move_lock(move_mu_);
  // A concurrent query (or an epoch) may have promoted it while we waited.
  // Pin under the lock: no demotion can run until we return the reference.
  if (auto resident = db_->PinTable(table); resident.ok()) return resident;
  POLY_RETURN_IF_ERROR(storage_->Promote(db_, table).status());
  POLY_ASSIGN_OR_RETURN(std::shared_ptr<ColumnTable> promoted,
                        db_->PinTable(table));
  m_miss_promotes_->Add(1);
  {
    // On-demand promotion is a tier move: start the cooldown clock so the
    // next epoch does not immediately demote it back.
    std::lock_guard<std::mutex> lock(state_mu_);
    uint64_t epoch = heat_.epoch();
    last_move_epoch_[table] = epoch == 0 ? 1 : epoch;
    managed_.insert(table);  // it came from our storage; keep managing it
  }
  TieringDecision d;
  d.partition = table;
  d.action = TierAction::kPromote;
  d.effective_heat = heat_.HeatOf(table);
  d.bytes = storage_->BytesOf(table);
  d.epoch = heat_.epoch();
  d.reason = "hot-tier miss: promoted on demand by a query";
  RecordDecision(d);
  return promoted;
}

void TieringDaemon::RecordDecision(const TieringDecision& decision) {
  std::lock_guard<std::mutex> lock(log_mu_);
  decision_log_.push_back(decision);
  while (decision_log_.size() > opts_.decision_log_capacity) decision_log_.pop_front();
  last_decision_[decision.partition] = decision;
}

std::vector<TieringDecision> TieringDaemon::DecisionLog() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return {decision_log_.begin(), decision_log_.end()};
}

std::string TieringDaemon::Explain(const std::string& partition) const {
  bool resident = db_->GetTable(partition).ok();
  bool warm = storage_->Contains(partition);
  double heat = heat_.HeatOf(partition);

  uint64_t total_scans = 0, total_points = 0;
  for (const HeatSample& s : heat_.Snapshot()) {
    if (s.partition == partition) {
      total_scans = s.total_scans;
      total_points = s.total_point_reads;
      break;
    }
  }

  char head[256];
  std::snprintf(head, sizeof(head),
                "%s: tier=%s heat=%.2f epoch=%llu scans=%llu point_reads=%llu",
                partition.c_str(),
                resident ? "hot" : (warm ? "warm" : "absent"), heat,
                static_cast<unsigned long long>(heat_.epoch()),
                static_cast<unsigned long long>(total_scans),
                static_cast<unsigned long long>(total_points));
  std::string out = head;

  std::lock_guard<std::mutex> lock(log_mu_);
  auto it = last_decision_.find(partition);
  if (it == last_decision_.end()) {
    out += "\n  last decision: none (never considered)";
  } else {
    const TieringDecision& d = it->second;
    char line[384];
    std::snprintf(line, sizeof(line),
                  "\n  last decision: %s at epoch %llu (heat=%.2f, %lluB) — %s",
                  TierActionName(d.action),
                  static_cast<unsigned long long>(d.epoch), d.effective_heat,
                  static_cast<unsigned long long>(d.bytes), d.reason.c_str());
    out += line;
  }
  return out;
}

void TieringDaemon::Start() { Start(opts_.period); }

void TieringDaemon::Start(std::chrono::milliseconds period) {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this, period] {
    std::unique_lock<std::mutex> lock(thread_mu_);
    while (!stop_requested_) {
      if (thread_cv_.wait_for(lock, period, [this] { return stop_requested_; })) {
        break;
      }
      lock.unlock();
      auto report = RunEpoch();
      if (!report.ok()) m_epoch_errors_->Add(1);
      lock.lock();
    }
  });
}

void TieringDaemon::Stop() {
  std::thread joined;
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
    joined = std::move(thread_);
  }
  thread_cv_.notify_all();
  joined.join();
}

bool TieringDaemon::running() const {
  std::lock_guard<std::mutex> lock(thread_mu_);
  return thread_.joinable();
}

}  // namespace poly::tiering
