#include "tiering/heat.h"

#include <algorithm>
#include <mutex>

namespace poly::tiering {

std::string AccessHeatTracker::ColumnKey(const std::string& partition,
                                         const std::string& column) {
  std::string key;
  key.reserve(partition.size() + 1 + column.size());
  key.append(partition);
  key.push_back('\x1f');
  key.append(column);
  return key;
}

std::shared_ptr<AccessHeatTracker::Cell> AccessHeatTracker::CellFor(
    const std::string& partition) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = cells_.find(partition);
    if (it != cells_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = cells_[partition];
  if (!slot) slot = std::make_shared<Cell>();
  return slot;
}

std::shared_ptr<AccessHeatTracker::Cell> AccessHeatTracker::ColumnCellFor(
    const std::string& partition, const std::string& column) {
  std::string key = ColumnKey(partition, column);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = column_cells_.find(key);
    if (it != column_cells_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = column_cells_[std::move(key)];
  if (!slot) slot = std::make_shared<Cell>();
  return slot;
}

void AccessHeatTracker::OnAccess(const AccessEvent& event) {
  std::shared_ptr<Cell> cell = CellFor(event.partition);
  if (event.point_read) {
    cell->point_reads.fetch_add(1, std::memory_order_relaxed);
    cell->total_point_reads.fetch_add(1, std::memory_order_relaxed);
  } else {
    cell->scans.fetch_add(1, std::memory_order_relaxed);
    cell->total_scans.fetch_add(1, std::memory_order_relaxed);
  }
  cell->rows.fetch_add(event.rows_scanned, std::memory_order_relaxed);
  cell->bytes.fetch_add(event.bytes, std::memory_order_relaxed);

  if (!opts_.track_columns || event.columns.empty()) return;
  for (const std::string& column : event.columns) {
    std::shared_ptr<Cell> col = ColumnCellFor(event.partition, column);
    if (event.point_read) {
      col->point_reads.fetch_add(1, std::memory_order_relaxed);
      col->total_point_reads.fetch_add(1, std::memory_order_relaxed);
    } else {
      col->scans.fetch_add(1, std::memory_order_relaxed);
      col->total_scans.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

uint64_t AccessHeatTracker::AdvanceEpoch() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto fold = [this](Cell& cell) {
    uint64_t scans = cell.scans.exchange(0, std::memory_order_relaxed);
    uint64_t points = cell.point_reads.exchange(0, std::memory_order_relaxed);
    cell.rows.store(0, std::memory_order_relaxed);
    cell.bytes.store(0, std::memory_order_relaxed);
    double fresh = static_cast<double>(scans) +
                   opts_.point_read_weight * static_cast<double>(points);
    double old = cell.heat.load(std::memory_order_relaxed);
    cell.heat.store(opts_.decay * old + fresh, std::memory_order_relaxed);
  };
  for (auto& [_, cell] : cells_) fold(*cell);
  for (auto& [_, cell] : column_cells_) fold(*cell);
  return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

double AccessHeatTracker::HeatOf(const std::string& partition) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = cells_.find(partition);
  if (it == cells_.end()) return 0.0;
  return it->second->heat.load(std::memory_order_relaxed);
}

double AccessHeatTracker::ColumnHeatOf(const std::string& partition,
                                       const std::string& column) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = column_cells_.find(ColumnKey(partition, column));
  if (it == column_cells_.end()) return 0.0;
  return it->second->heat.load(std::memory_order_relaxed);
}

std::vector<HeatSample> AccessHeatTracker::Snapshot() const {
  std::vector<HeatSample> out;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    out.reserve(cells_.size());
    for (const auto& [name, cell] : cells_) {
      HeatSample s;
      s.partition = name;
      s.heat = cell->heat.load(std::memory_order_relaxed);
      s.epoch_scans = cell->scans.load(std::memory_order_relaxed);
      s.epoch_point_reads = cell->point_reads.load(std::memory_order_relaxed);
      s.epoch_rows = cell->rows.load(std::memory_order_relaxed);
      s.epoch_bytes = cell->bytes.load(std::memory_order_relaxed);
      s.total_scans = cell->total_scans.load(std::memory_order_relaxed);
      s.total_point_reads = cell->total_point_reads.load(std::memory_order_relaxed);
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HeatSample& a, const HeatSample& b) { return a.partition < b.partition; });
  return out;
}

std::vector<ColumnHeatSample> AccessHeatTracker::ColumnSnapshot(
    const std::string& partition) const {
  std::vector<ColumnHeatSample> out;
  std::string prefix = partition;
  prefix.push_back('\x1f');
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [key, cell] : column_cells_) {
      if (key.size() <= prefix.size() || key.compare(0, prefix.size(), prefix) != 0)
        continue;
      ColumnHeatSample s;
      s.partition = partition;
      s.column = key.substr(prefix.size());
      s.heat = cell->heat.load(std::memory_order_relaxed);
      s.epoch_scans = cell->scans.load(std::memory_order_relaxed);
      s.epoch_point_reads = cell->point_reads.load(std::memory_order_relaxed);
      s.total_scans = cell->total_scans.load(std::memory_order_relaxed);
      s.total_point_reads = cell->total_point_reads.load(std::memory_order_relaxed);
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ColumnHeatSample& a, const ColumnHeatSample& b) {
              return a.column < b.column;
            });
  return out;
}

void AccessHeatTracker::Forget(const std::string& partition) {
  std::string prefix = partition;
  prefix.push_back('\x1f');
  std::unique_lock<std::shared_mutex> lock(mu_);
  cells_.erase(partition);
  for (auto it = column_cells_.begin(); it != column_cells_.end();) {
    if (it->first.size() > prefix.size() &&
        it->first.compare(0, prefix.size(), prefix) == 0) {
      it = column_cells_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace poly::tiering
