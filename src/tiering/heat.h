#ifndef POLY_TIERING_HEAT_H_
#define POLY_TIERING_HEAT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/access_hooks.h"

namespace poly::tiering {

/// Point-in-time heat reading for one partition.
struct HeatSample {
  std::string partition;
  /// Decayed heat after the last AdvanceEpoch (exponential moving score).
  double heat = 0.0;
  /// Raw counts accumulated since the last epoch fold.
  uint64_t epoch_scans = 0;
  uint64_t epoch_point_reads = 0;
  uint64_t epoch_rows = 0;
  uint64_t epoch_bytes = 0;
  /// Lifetime totals (never decayed) for explain output.
  uint64_t total_scans = 0;
  uint64_t total_point_reads = 0;
};

/// Point-in-time heat reading for one column of one partition.
struct ColumnHeatSample {
  std::string partition;
  std::string column;
  double heat = 0.0;
  uint64_t epoch_scans = 0;
  uint64_t epoch_point_reads = 0;
  uint64_t total_scans = 0;
  uint64_t total_point_reads = 0;
};

/// Lock-cheap per-partition access-heat tracker. Query threads call
/// OnAccess (via the Database's AccessObserver hook); the hot path is one
/// shared-lock map probe plus a handful of relaxed atomic adds — no
/// exclusive lock unless the partition has never been seen before. The
/// daemon thread periodically calls AdvanceEpoch, which folds the raw epoch
/// counts into a decayed score:
///
///   heat' = decay * heat + scans + point_read_weight * point_reads
///
/// so recent access dominates and idle partitions cool off geometrically —
/// the "observed access behavior" half of the paper's Fig. 1 loop, in the
/// spirit of Polynesia's workload-driven placement (PAPERS.md).
///
/// Alongside the per-partition score, the tracker keeps the SAME counters
/// per (partition, column) when the executor names the columns it read
/// (AccessEvent::columns): wide tables show which columns carry the heat,
/// surfaced through ColumnHeatOf / ColumnSnapshot and the daemon's
/// Explain(). Column cells fold and decay on the same epoch cadence.
class AccessHeatTracker : public AccessObserver {
 public:
  struct Options {
    /// Multiplier applied to accumulated heat at every epoch boundary.
    /// 0.5 -> a partition loses half its score per idle epoch.
    double decay = 0.5;
    /// How much hotter a point read counts than one analytic scan. Point
    /// reads are OLTP-shaped: latency-sensitive, so they argue harder for
    /// hot residency than a batch sweep touching the same partition.
    double point_read_weight = 4.0;
    /// Track per-column heat when events carry column names. On by
    /// default; the per-event cost is one map probe + two relaxed adds per
    /// named column, bounded by schema width.
    bool track_columns = true;
  };

  AccessHeatTracker() : AccessHeatTracker(Options{}) {}
  explicit AccessHeatTracker(Options opts) : opts_(opts) {}

  AccessHeatTracker(const AccessHeatTracker&) = delete;
  AccessHeatTracker& operator=(const AccessHeatTracker&) = delete;

  /// Thread-safe, called concurrently from query threads.
  void OnAccess(const AccessEvent& event) override;

  /// Folds the current epoch's raw counts into decayed heat for every
  /// tracked partition and column and resets the epoch counters. Returns
  /// the new epoch number (first call returns 1). Called by the daemon;
  /// safe to run concurrently with OnAccess — counts racing the fold land
  /// in the next epoch, never lost.
  uint64_t AdvanceEpoch();

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Decayed heat for one partition; 0 if never seen.
  double HeatOf(const std::string& partition) const;

  /// Decayed heat for one column of one partition; 0 if never seen.
  double ColumnHeatOf(const std::string& partition, const std::string& column) const;

  /// Snapshot of every tracked partition, sorted by name (deterministic).
  std::vector<HeatSample> Snapshot() const;

  /// Snapshot of every tracked column of one partition, sorted by column
  /// name (deterministic). Empty if the partition's events never named
  /// columns (or track_columns is off).
  std::vector<ColumnHeatSample> ColumnSnapshot(const std::string& partition) const;

  /// Forgets one partition (e.g. after its table is dropped for good),
  /// including its column cells.
  void Forget(const std::string& partition);

  const Options& options() const { return opts_; }

 private:
  struct Cell {
    std::atomic<uint64_t> scans{0};
    std::atomic<uint64_t> point_reads{0};
    std::atomic<uint64_t> rows{0};
    std::atomic<uint64_t> bytes{0};
    std::atomic<uint64_t> total_scans{0};
    std::atomic<uint64_t> total_point_reads{0};
    std::atomic<double> heat{0.0};
  };

  /// Returns a shared handle, not a raw pointer: a concurrent Forget may
  /// erase the map entry while OnAccess is still bumping the cell, and the
  /// handle keeps the cell alive until the last reader drops it.
  std::shared_ptr<Cell> CellFor(const std::string& partition);
  /// Same, for a (partition, column) cell in the column map.
  std::shared_ptr<Cell> ColumnCellFor(const std::string& partition,
                                      const std::string& column);

  /// Column cells are keyed "partition\x1fcolumn" in one flat map ('\x1f'
  /// = ASCII unit separator, which cannot appear in catalog names).
  static std::string ColumnKey(const std::string& partition,
                               const std::string& column);

  Options opts_;
  std::atomic<uint64_t> epoch_{0};
  mutable std::shared_mutex mu_;  // guards both map shapes, not the cells
  std::unordered_map<std::string, std::shared_ptr<Cell>> cells_;
  std::unordered_map<std::string, std::shared_ptr<Cell>> column_cells_;
};

}  // namespace poly::tiering

#endif  // POLY_TIERING_HEAT_H_
