#include "soe/fault_schedule.h"

#include <algorithm>

#include "soe/network.h"

namespace poly {

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_virtual_nanos < b.at_virtual_nanos;
                   });
}

FaultSchedule FaultSchedule::RandomSchedule(uint64_t seed, int num_nodes,
                                            int num_log_units, uint64_t horizon_nanos,
                                            int num_disruptions) {
  Random rng(seed);
  std::vector<FaultEvent> events;
  if (num_nodes < 1 || horizon_nanos == 0) return FaultSchedule(std::move(events));
  for (int i = 0; i < num_disruptions; ++i) {
    uint64_t start = rng.Uniform(horizon_nanos);
    // Cuts last 5-25% of the horizon, then heal — transient by construction.
    uint64_t duration = horizon_nanos / 20 + rng.Uniform(horizon_nanos / 5);
    uint64_t end = std::min(start + duration, horizon_nanos - 1);
    switch (rng.Uniform(4)) {
      case 0: {  // symmetric node<->node cut
        int a = static_cast<int>(rng.Uniform(num_nodes));
        int b = static_cast<int>(rng.Uniform(num_nodes));
        if (a == b) b = (b + 1) % num_nodes;
        events.push_back({start, FaultEvent::Kind::kPartition, a, b, 0});
        events.push_back({end, FaultEvent::Kind::kHeal, a, b, 0});
        break;
      }
      case 1: {  // asymmetric coordinator -> node cut (requests lost, not replies)
        int a = static_cast<int>(rng.Uniform(num_nodes));
        events.push_back(
            {start, FaultEvent::Kind::kPartitionOneWay, kCoordinatorEndpoint, a, 0});
        events.push_back({end, FaultEvent::Kind::kHeal, kCoordinatorEndpoint, a, 0});
        break;
      }
      case 2: {  // node cut off from one log unit (replay must fail over)
        int a = static_cast<int>(rng.Uniform(num_nodes));
        int u = num_log_units > 0 ? static_cast<int>(rng.Uniform(num_log_units)) : 0;
        events.push_back({start, FaultEvent::Kind::kPartition, a, LogUnitEndpoint(u), 0});
        events.push_back({end, FaultEvent::Kind::kHeal, a, LogUnitEndpoint(u), 0});
        break;
      }
      default: {  // lossy phase: raise the drop rate, then restore it
        double rate = 0.05 + 0.25 * rng.NextDouble();
        events.push_back({start, FaultEvent::Kind::kSetDropRate, -1, -1, rate});
        events.push_back({end, FaultEvent::Kind::kSetDropRate, -1, -1, 0.0});
        break;
      }
    }
  }
  return FaultSchedule(std::move(events));
}

}  // namespace poly
