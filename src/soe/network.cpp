#include "soe/network.h"

namespace poly {

void SimulatedNetwork::set_metrics(metrics::Registry* registry) {
  // Attach before traffic starts: the cached pointers are written without
  // synchronization against concurrent Send callers.
  if (registry == nullptr) {
    metrics_ = FabricMetrics{};
    return;
  }
  metrics_.messages = registry->counter("soe.net.messages");
  metrics_.bytes = registry->counter("soe.net.bytes");
  metrics_.dropped = registry->counter("soe.net.dropped");
  metrics_.duplicated = registry->counter("soe.net.duplicated");
  metrics_.delayed = registry->counter("soe.net.delayed");
  metrics_.partitions_installed = registry->counter("soe.net.partitions_installed");
  metrics_.send_nanos = registry->histogram("soe.net.send_nanos");
}

void SimulatedNetwork::Account(uint64_t bytes, uint64_t extra_delay_nanos) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  double opts_latency;
  double opts_bw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    opts_latency = options_.latency_nanos;
    opts_bw = options_.bandwidth_bytes_per_sec;
  }
  uint64_t nanos = static_cast<uint64_t>(
      opts_latency + static_cast<double>(bytes) / opts_bw * 1e9);
  virtual_nanos_.fetch_add(nanos + extra_delay_nanos, std::memory_order_relaxed);
  if (metrics_.messages != nullptr) {
    metrics_.messages->Add(1);
    metrics_.bytes->Add(bytes);
    metrics_.send_nanos->Observe(nanos + extra_delay_nanos);
  }
}

bool SimulatedNetwork::BlockedLocked(int from, int to) const {
  return down_.count(from) > 0 || down_.count(to) > 0 ||
         blocked_.count({from, to}) > 0;
}

Status SimulatedNetwork::Send(int from, int to, uint64_t bytes) {
  bool blocked;
  bool drop = false;
  bool duplicate = false;
  uint64_t delay = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    blocked = BlockedLocked(from, to);
    if (!blocked) {
      // One fixed-order draw per fault class keeps the stream aligned
      // between runs regardless of which faults are enabled.
      drop = options_.drop_probability > 0 && rng_.Bernoulli(options_.drop_probability);
      duplicate = options_.duplicate_probability > 0 &&
                  rng_.Bernoulli(options_.duplicate_probability);
      if (options_.delay_probability > 0 && rng_.Bernoulli(options_.delay_probability)) {
        delay = static_cast<uint64_t>(rng_.NextDouble() * options_.max_delay_nanos);
      }
    }
  }
  if (blocked) {
    return Status::Unavailable("network partition: " + std::to_string(from) +
                               " cannot reach " + std::to_string(to));
  }
  Account(bytes, delay);
  if (delay > 0) {
    delayed_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.delayed != nullptr) metrics_.delayed->Add(1);
  }
  if (drop) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.dropped != nullptr) metrics_.dropped->Add(1);
    return Status::Unavailable("message " + std::to_string(from) + "->" +
                               std::to_string(to) + " dropped");
  }
  if (duplicate) {
    // The duplicate copy is charged too; delivery of the same payload twice
    // must be idempotent at the receiver (the shared log keys by offset).
    Account(bytes, 0);
    duplicated_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.duplicated != nullptr) metrics_.duplicated->Add(1);
  }
  return Status::OK();
}

void SimulatedNetwork::Partition(int a, int b) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    blocked_.insert({a, b});
    blocked_.insert({b, a});
  }
  if (metrics_.partitions_installed != nullptr) metrics_.partitions_installed->Add(1);
}

void SimulatedNetwork::PartitionOneWay(int from, int to) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    blocked_.insert({from, to});
  }
  if (metrics_.partitions_installed != nullptr) metrics_.partitions_installed->Add(1);
}

void SimulatedNetwork::Heal(int a, int b) {
  std::lock_guard<std::mutex> lock(mu_);
  blocked_.erase({a, b});
  blocked_.erase({b, a});
}

void SimulatedNetwork::HealAll() {
  std::lock_guard<std::mutex> lock(mu_);
  blocked_.clear();
}

void SimulatedNetwork::SetEndpointDown(int endpoint, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down) {
    down_.insert(endpoint);
  } else {
    down_.erase(endpoint);
  }
}

bool SimulatedNetwork::CanReach(int from, int to) const {
  std::lock_guard<std::mutex> lock(mu_);
  return !BlockedLocked(from, to);
}

}  // namespace poly
