#ifndef POLY_SOE_RDD_H_
#define POLY_SOE_RDD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "soe/cluster.h"

namespace poly {

/// Spark-style resilient-dataset facade over an SOE table (§IV-C second
/// integration: "integration is performed into the Spark framework as RDD
/// objects by utilizing SAP HANA SOE for relevant operations like join,
/// filters, aggregation etc. By wrapping SAP HANA SOE in RDD objects
/// customers can still use all Spark functionality").
///
/// Transformations are lazy. Filters expressed as engine predicates are
/// *pushed down* into the distributed scan; lambda-based map/filter stages
/// run framework-side after collection (exactly the split a Spark data
/// source with filter pushdown has). Actions (Collect/Count/Aggregate)
/// trigger execution. The "resilient" half: an action that fails because a
/// partition lost its replicas recomputes the missing data from the shared
/// log (Rebalance) and re-runs — the engine-side analogue of Spark's
/// lineage recompute.
class SoeRdd {
 public:
  using RowPredicate = std::function<bool(const Row&)>;
  using RowMapper = std::function<Row(const Row&)>;

  /// Roots an RDD at a distributed table.
  static SoeRdd FromTable(SoeCluster* cluster, std::string table);

  /// Engine-evaluable filter: pushed into the SOE scan.
  SoeRdd Where(ExprPtr predicate) const;
  /// Arbitrary framework-side filter: runs after rows leave the engine.
  SoeRdd Filter(RowPredicate predicate) const;
  /// Framework-side map.
  SoeRdd Map(RowMapper mapper) const;

  // ---- actions ----

  /// Materializes the dataset (scan + framework stages).
  StatusOr<std::vector<Row>> Collect() const;
  StatusOr<uint64_t> Count() const;

  /// Aggregation action. With no framework-side stages the whole
  /// computation is pushed to the SOE coordinator; otherwise rows are
  /// collected first and aggregated framework-side (same result, more
  /// traffic — Count()/stats show the difference).
  StatusOr<ResultSet> AggregateByKey(const std::string& group_column,
                                     std::vector<AggSpec> aggregates) const;

  /// True if every pending stage can be pushed to the engine.
  bool FullyPushable() const { return stages_.empty(); }

 private:
  struct Stage {
    RowPredicate filter;  // exactly one of filter/mapper is set
    RowMapper mapper;
  };

  SoeCluster* cluster_ = nullptr;
  std::string table_;
  ExprPtr pushed_predicate_;  // conjunction of Where() calls
  std::vector<Stage> stages_;
};

}  // namespace poly

#endif  // POLY_SOE_RDD_H_
