#include "soe/partition.h"

namespace poly {

size_t PartitionOf(const Value& key, const PartitionSpec& spec) {
  if (spec.kind == PartitionSpec::Kind::kHash) {
    return key.Hash() % spec.num_partitions;
  }
  size_t i = 0;
  for (; i < spec.range_bounds.size(); ++i) {
    if (key < spec.range_bounds[i]) break;
  }
  return i;
}

std::string PartitionTableName(const std::string& table, size_t partition) {
  return table + "#p" + std::to_string(partition);
}

}  // namespace poly
