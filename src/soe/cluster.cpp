#include "soe/cluster.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "federation/federation.h"

namespace poly {

SoeCluster::SoeCluster(Options options)
    : options_(options),
      net_(options.net),
      log_(SharedLog::Options{options.log_units, options.log_replication,
                              options.log_durable_dir},
           &net_),
      stats_(&metrics_),
      jitter_rng_(Random::Mix(options.fault_seed, 0x6a17)) {
  net_.set_metrics(&metrics_);
  log_.set_metrics(&metrics_);
  cm_.retries = metrics_.counter("soe.retry.count");
  cm_.backoff_nanos = metrics_.counter("soe.retry.backoff_nanos");
  cm_.backoff_hist = metrics_.histogram("soe.retry.backoff_wait_nanos");
  cm_.dqp_queries = metrics_.counter("soe.dqp.queries");
  cm_.dqp_result_bytes = metrics_.counter("soe.dqp.result_bytes");
  cm_.dqp_shuffle_bytes = metrics_.counter("soe.dqp.shuffle_bytes");
  cm_.dqp_fragments = metrics_.counter("soe.dqp.fragments");
  cm_.dqp_failovers = metrics_.counter("soe.dqp.failovers");
  cm_.task_nanos = metrics_.histogram("soe.dqp.task_virtual_nanos");
  cm_.txn_commits = metrics_.counter("soe.txn.commits");
  cm_.txn_rows = metrics_.counter("soe.txn.rows_committed");
  cm_.node_kills = metrics_.counter("soe.clustermgr.node_kills");
  cm_.node_restarts = metrics_.counter("soe.clustermgr.node_restarts");
  cm_.rebuilds = metrics_.counter("soe.clustermgr.partition_rebuilds");
  for (int i = 0; i < options_.num_nodes; ++i) {
    cm_.node_rpcs.push_back(
        metrics_.counter("soe.rpc.node." + std::to_string(i) + ".tasks"));
    nodes_.push_back(std::make_unique<SoeNode>(i, options_.default_mode));
    discovery_.RegisterNode(i);
  }
}

// ---- fault schedule ----

void SoeCluster::InstallFaultSchedule(FaultSchedule schedule) {
  fault_schedule_ = std::move(schedule);
}

void SoeCluster::PumpFaults() {
  uint64_t now = net_.virtual_nanos();
  while (const FaultEvent* e = fault_schedule_.Peek()) {
    if (e->at_virtual_nanos > now) break;
    switch (e->kind) {
      case FaultEvent::Kind::kCrashNode:
        if (e->a >= 0 && e->a < num_nodes()) (void)KillNode(e->a);
        break;
      case FaultEvent::Kind::kRestartNode:
        if (e->a >= 0 && e->a < num_nodes()) (void)RestartNode(e->a);
        break;
      case FaultEvent::Kind::kPartition:
        net_.Partition(e->a, e->b);
        break;
      case FaultEvent::Kind::kPartitionOneWay:
        net_.PartitionOneWay(e->a, e->b);
        break;
      case FaultEvent::Kind::kHeal:
        net_.Heal(e->a, e->b);
        break;
      case FaultEvent::Kind::kHealAll:
        net_.HealAll();
        break;
      case FaultEvent::Kind::kSetDropRate: {
        SimulatedNetwork::Options opts = net_.options();
        opts.drop_probability = e->value;
        net_.set_options(opts);
        break;
      }
      case FaultEvent::Kind::kSetDuplicateRate: {
        SimulatedNetwork::Options opts = net_.options();
        opts.duplicate_probability = e->value;
        net_.set_options(opts);
        break;
      }
      case FaultEvent::Kind::kSetDelayRate: {
        SimulatedNetwork::Options opts = net_.options();
        opts.delay_probability = e->value;
        net_.set_options(opts);
        break;
      }
    }
    fault_schedule_.Pop();
  }
}

// ---- retry layer ----

uint64_t SoeCluster::BackoffNanos(int attempt) {
  uint64_t backoff = options_.retry.base_backoff_nanos;
  for (int i = 0; i < attempt && backoff < options_.retry.max_backoff_nanos; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, options_.retry.max_backoff_nanos);
  // Half fixed + half jitter: desynchronizes competing retriers while the
  // seeded stream keeps every run replayable.
  return backoff / 2 + jitter_rng_.Uniform(backoff / 2 + 1);
}

Status SoeCluster::WithRetries(const char* what, const std::function<Status()>& op) {
  uint64_t start = net_.virtual_nanos();
  Status st;
  for (int attempt = 0; attempt < options_.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++total_retries_;
      cm_.retries->Add(1);
      uint64_t wait = BackoffNanos(attempt - 1);
      cm_.backoff_nanos->Add(wait);
      cm_.backoff_hist->Observe(wait);
      net_.AdvanceVirtualTime(wait);
      PumpFaults();  // time passed: scheduled heals/cuts may fire
      if (net_.virtual_nanos() - start >= options_.retry.op_timeout_nanos) {
        return Status::Unavailable(std::string(what) + " timed out after " +
                                   std::to_string(attempt) + " attempts: " + st.message());
      }
    }
    st = op();
    if (st.ok() || !st.IsUnavailable()) return st;  // only Unavailable is transient
  }
  return Status::Unavailable(std::string(what) + " failed after " +
                             std::to_string(options_.retry.max_attempts) +
                             " attempts: " + st.message());
}

Status SoeCluster::CreateTable(const std::string& name, const Schema& schema,
                               const PartitionSpec& spec, int replication) {
  if (replication < 1) replication = 1;
  if (replication > static_cast<int>(nodes_.size())) {
    return Status::InvalidArgument("replication exceeds cluster size");
  }
  POLY_RETURN_IF_ERROR(schema.IndexOf(spec.column).status());
  CatalogService::TableInfo info;
  info.schema = schema;
  info.spec = spec;
  info.replication = replication;
  info.placement.resize(spec.num_partitions);
  for (size_t p = 0; p < spec.num_partitions; ++p) {
    for (int r = 0; r < replication; ++r) {
      int node = (next_placement_ + r) % static_cast<int>(nodes_.size());
      info.placement[p].push_back(node);
      POLY_RETURN_IF_ERROR(nodes_[node]->HostPartition(name, p, schema));
    }
    next_placement_ = (next_placement_ + 1) % static_cast<int>(nodes_.size());
  }
  return catalog_.RegisterTable(name, std::move(info));
}

StatusOr<uint64_t> SoeCluster::CommitInserts(const std::string& table,
                                             const std::vector<Row>& rows) {
  PumpFaults();
  POLY_ASSIGN_OR_RETURN(const CatalogService::TableInfo* info, catalog_.Lookup(table));
  POLY_ASSIGN_OR_RETURN(size_t key_col, info->schema.IndexOf(info->spec.column));
  SoeLogRecord record;
  record.writes.reserve(rows.size());
  for (const Row& row : rows) {
    if (row.size() != info->schema.num_columns()) {
      return Status::InvalidArgument("row width mismatch for " + table);
    }
    SoeWrite w;
    w.table = table;
    w.partition = PartitionOf(row[key_col], info->spec);
    w.row = row;
    record.writes.push_back(std::move(w));
  }
  // v2transact: serialize + persist through the shared log; the offset is
  // the global commit timestamp. A failed append consumes no offset, so
  // the bounded retry below re-submits the identical record safely.
  std::string encoded = record.Encode();
  net_.Send(encoded.size());  // client -> broker (in-process control plane)
  uint64_t offset = 0;
  POLY_RETURN_IF_ERROR(WithRetries("log append", [&]() -> Status {
    POLY_ASSIGN_OR_RETURN(offset, log_.Append(encoded));
    return Status::OK();
  }));
  cm_.txn_commits->Add(1);
  cm_.txn_rows->Add(rows.size());
  // Catalog statistics for the distributed planner's join-strategy rule:
  // committed rows bump the table's row estimate exactly once (the append
  // consumed one offset; node-side applies/replays never touch it).
  if (auto stats_info = catalog_.MutableLookup(table); stats_info.ok()) {
    (*stats_info)->approx_rows += rows.size();
  }

  // OLTP nodes hosting touched partitions incorporate the log in-line.
  // Best-effort: the commit is already durable, so a node that stays
  // unreachable after retries simply remains stale until it next syncs.
  for (const SoeWrite& w : record.writes) {
    for (int n : info->placement[w.partition]) {
      if (!discovery_.IsAlive(n)) continue;
      if (nodes_[n]->mode() != NodeMode::kOltp) continue;
      if (nodes_[n]->applied_offset() > offset) continue;  // batch already applied
      (void)WithRetries("oltp apply", [&] { return nodes_[n]->ApplyUpTo(log_, offset + 1); });
    }
  }
  return offset;
}

Status SoeCluster::SyncForRead(SoeNode* node) {
  if (node->mode() == NodeMode::kOltp) {
    return node->ApplyUpTo(log_, log_.Tail());
  }
  return Status::OK();  // OLAP nodes serve their (possibly stale) snapshot
}

StatusOr<int> SoeCluster::RouteToNode(const CatalogService::TableInfo& info,
                                      size_t partition) const {
  for (int n : info.placement[partition]) {
    if (discovery_.IsAlive(n)) return n;
  }
  return Status::Unavailable("no live replica for partition " + std::to_string(partition));
}

StatusOr<ResultSet> SoeCluster::RunPartitionTask(const CatalogService::TableInfo& info,
                                                 size_t p, const PlanPtr& plan,
                                                 int* served_by) {
  uint64_t start = net_.virtual_nanos();
  Status last = Status::Unavailable("no live replica for partition " + std::to_string(p));
  for (int attempt = 0; attempt < options_.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++last_stats_.retries;
      ++total_retries_;
      cm_.retries->Add(1);
      uint64_t wait = BackoffNanos(attempt - 1);
      cm_.backoff_nanos->Add(wait);
      cm_.backoff_hist->Observe(wait);
      net_.AdvanceVirtualTime(wait);
      PumpFaults();
      if (net_.virtual_nanos() - start >= options_.retry.op_timeout_nanos) break;
    }
    // One pass over the replica set per attempt: primary first, then
    // failover candidates.
    bool on_primary = true;
    for (int n : info.placement[p]) {
      if (!discovery_.IsAlive(n)) {
        on_primary = false;
        continue;
      }
      SoeNode* node = nodes_[n].get();
      ResultSet result;
      uint64_t exec_nanos = 0;
      uint64_t gathered = 0;
      Status st = [&]() -> Status {
        // Task dispatch (coordinator -> node), freshness sync (node <-> log),
        // local execution, then the result rows (node -> coordinator). Any
        // lost message fails the whole task; nothing merges until the task
        // round-trip fully succeeds, so retries can never double-count.
        POLY_RETURN_IF_ERROR(net_.Send(kCoordinatorEndpoint, n, 256));
        POLY_RETURN_IF_ERROR(SyncForRead(node));
        uint64_t before = node->busy_nanos();
        POLY_ASSIGN_OR_RETURN(result, node->ExecuteLocal(plan));
        exec_nanos = node->busy_nanos() - before;
        for (const Row& row : result.rows) {
          uint64_t row_bytes = EstimateRowBytes(row);
          POLY_RETURN_IF_ERROR(net_.Send(n, kCoordinatorEndpoint, row_bytes));
          gathered += row_bytes;
        }
        return Status::OK();
      }();
      if (st.ok()) {
        if (!on_primary) {
          ++last_stats_.failovers;
          cm_.dqp_failovers->Add(1);
        }
        last_stats_.result_bytes_gathered += gathered;
        last_stats_.total_exec_nanos += exec_nanos;
        stats_.RecordQuery(n, 0, exec_nanos);
        if (n >= 0 && n < static_cast<int>(cm_.node_rpcs.size())) {
          cm_.node_rpcs[n]->Add(1);
        }
        cm_.task_nanos->Observe(net_.virtual_nanos() - start);
        if (trace_) {
          const PlanNode* scan = plan.get();
          while (!scan->children.empty()) scan = scan->children[0].get();
          OperatorSpan task;
          task.label =
              "PartitionTask(" + scan->table + "@node" + std::to_string(n) + ")";
          task.rows_out = result.rows.size();
          task.bytes_out = gathered;
          task.wall_nanos = net_.virtual_nanos() - start;
          task_spans_.push_back(std::move(task));
        }
        *served_by = n;
        return result;
      }
      if (!st.IsUnavailable()) return st;  // execution errors are not transient
      last = st;
      on_primary = false;
    }
  }
  return Status::Unavailable("partition " + std::to_string(p) +
                             " task failed after retries: " + last.message());
}

void SoeCluster::FinishTrace(const std::string& label, uint64_t trace_start,
                             ResultSet* out) {
  if (!trace_) return;
  auto root = std::make_shared<OperatorSpan>();
  root->label = label;
  for (OperatorSpan& task : task_spans_) {
    root->rows_in += task.rows_out;
    root->children.push_back(std::move(task));
  }
  task_spans_.clear();
  root->rows_out = out->rows.size();
  root->bytes_out = last_stats_.result_bytes_gathered;
  root->wall_nanos = net_.virtual_nanos() - trace_start;
  out->trace = root;
  last_trace_ = root;
}

void SoeCluster::CoordinatorBackoff(int attempt) {
  ++total_retries_;
  cm_.retries->Add(1);
  uint64_t wait = BackoffNanos(attempt);
  cm_.backoff_nanos->Add(wait);
  cm_.backoff_hist->Observe(wait);
  net_.AdvanceVirtualTime(wait);
  PumpFaults();
}

StatusOr<ResultSet> SoeCluster::RunFragmentTask(
    const std::string& label, const std::vector<int>& candidates,
    bool sync_for_read, const PlanPtr& plan,
    const std::vector<SoeNode::FragmentInput>& inputs, bool gather_rows,
    int* served_by) {
  uint64_t start = net_.virtual_nanos();
  Status last = Status::Unavailable("no live node for " + label);
  for (int attempt = 0; attempt < options_.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++last_stats_.retries;
      ++total_retries_;
      cm_.retries->Add(1);
      uint64_t wait = BackoffNanos(attempt - 1);
      cm_.backoff_nanos->Add(wait);
      cm_.backoff_hist->Observe(wait);
      net_.AdvanceVirtualTime(wait);
      PumpFaults();
      if (net_.virtual_nanos() - start >= options_.retry.op_timeout_nanos) break;
    }
    // One pass over the candidate nodes per attempt: preferred site first,
    // then failover candidates.
    bool on_primary = true;
    for (int n : candidates) {
      if (!discovery_.IsAlive(n)) {
        on_primary = false;
        continue;
      }
      SoeNode* node = nodes_[n].get();
      ResultSet result;
      uint64_t exec_nanos = 0;
      uint64_t gathered = 0;
      uint64_t shuffled = 0;
      Status st = [&]() -> Status {
        // Task dispatch, optional freshness sync, staged-input delivery
        // (producer -> serving node, charged at consumption time — rows a
        // node itself produced ride for free), local execution, and for
        // gather stages the result rows (node -> coordinator). Any lost
        // message fails the whole task; nothing merges until the round
        // trip fully succeeds, so retries can never double-count.
        POLY_RETURN_IF_ERROR(net_.Send(kCoordinatorEndpoint, n, 256));
        if (sync_for_read) POLY_RETURN_IF_ERROR(SyncForRead(node));
        for (const SoeNode::FragmentInput& input : inputs) {
          for (const auto& [producer, row] : *input.rows) {
            if (producer == n) continue;
            uint64_t row_bytes = EstimateRowBytes(row);
            POLY_RETURN_IF_ERROR(net_.Send(producer, n, row_bytes));
            shuffled += row_bytes;
          }
        }
        uint64_t before = node->busy_nanos();
        POLY_ASSIGN_OR_RETURN(result, node->ExecuteFragment(plan, inputs));
        exec_nanos = node->busy_nanos() - before;
        if (gather_rows) {
          for (const Row& row : result.rows) {
            uint64_t row_bytes = EstimateRowBytes(row);
            POLY_RETURN_IF_ERROR(net_.Send(n, kCoordinatorEndpoint, row_bytes));
            gathered += row_bytes;
          }
        }
        return Status::OK();
      }();
      if (st.ok()) {
        if (!on_primary) {
          ++last_stats_.failovers;
          cm_.dqp_failovers->Add(1);
        }
        last_stats_.result_bytes_gathered += gathered;
        last_stats_.shuffle_bytes += shuffled;
        last_stats_.total_exec_nanos += exec_nanos;
        stats_.RecordQuery(n, 0, exec_nanos);
        if (n >= 0 && n < static_cast<int>(cm_.node_rpcs.size())) {
          cm_.node_rpcs[n]->Add(1);
        }
        cm_.task_nanos->Observe(net_.virtual_nanos() - start);
        if (trace_) {
          OperatorSpan task;
          task.label = label + "@node" + std::to_string(n);
          task.rows_out = result.rows.size();
          task.bytes_out = gathered + shuffled;
          task.wall_nanos = net_.virtual_nanos() - start;
          task_spans_.push_back(std::move(task));
        }
        *served_by = n;
        return result;
      }
      if (!st.IsUnavailable()) return st;  // execution errors are not transient
      last = st;
      on_primary = false;
    }
  }
  return Status::Unavailable(label + " failed after retries: " + last.message());
}

StatusOr<ResultSet> SoeCluster::RunFragments(const DistributedPlan& dplan) {
  PumpFaults();
  last_stats_ = DistributedQueryStats{};
  uint64_t trace_start = net_.virtual_nanos();
  if (trace_) task_spans_.clear();

  // Coordinator mailboxes: outbox[stage][consumer task] holds rows tagged
  // with their producer node. Routing is decided as soon as a producer task
  // commits; delivery is charged when the consuming task runs.
  using Box = std::vector<std::pair<int, Row>>;
  std::vector<std::vector<Box>> outbox(dplan.stages.size());

  std::vector<int> consumer_of(dplan.stages.size(), -1);
  for (size_t s = 0; s < dplan.stages.size(); ++s) {
    for (const StagedInput& in : dplan.stages[s].inputs) {
      if (in.producer_stage >= 0) consumer_of[in.producer_stage] = static_cast<int>(s);
    }
  }
  auto TaskCount = [](const FragmentStage& st) -> size_t {
    return st.by_partition ? st.partitions.size()
                           : static_cast<size_t>(std::max(1, st.num_tasks));
  };

  ResultSet gathered;
  gathered.column_names = dplan.gather_columns;
  std::unordered_map<int, uint64_t> node_nanos;

  for (size_t s = 0; s < dplan.stages.size(); ++s) {
    const FragmentStage& st = dplan.stages[s];
    if (st.mode == ExchangeMode::kBroadcast) {
      outbox[s].resize(1);
    } else if (st.mode == ExchangeMode::kRepartition) {
      if (consumer_of[s] < 0) {
        return Status::Internal("repartition stage has no consumer");
      }
      outbox[s].resize(TaskCount(dplan.stages[consumer_of[s]]));
    }
    const CatalogService::TableInfo* info = nullptr;
    if (st.by_partition) {
      POLY_ASSIGN_OR_RETURN(info, catalog_.Lookup(st.table));
      last_stats_.partitions += st.partitions.size();
    }
    size_t ntasks = TaskCount(st);
    for (size_t t = 0; t < ntasks; ++t) {
      PumpFaults();  // task edges are the deterministic fault-firing points
      PlanPtr task_plan = st.plan;
      std::vector<int> candidates;
      std::string label;
      if (st.by_partition) {
        size_t p = st.partitions[t];
        if (p >= info->placement.size()) {
          return Status::Internal("partition id out of range for " + st.table);
        }
        std::string part_table = PartitionTableName(st.table, p);
        task_plan = RewriteScanTables(st.plan, st.table, part_table);
        candidates = info->placement[p];
        label = "Fragment(" + st.label + ":" + part_table + ")";
      } else {
        // Shuffle consumers can run anywhere: preferred node rotates with
        // the task index, the rest of the live set is the failover order.
        std::vector<int> live = discovery_.LiveNodes();
        if (live.empty()) return Status::Unavailable("no live nodes for " + st.label);
        size_t off = t % live.size();
        candidates.assign(live.begin() + static_cast<std::ptrdiff_t>(off), live.end());
        candidates.insert(candidates.end(), live.begin(),
                          live.begin() + static_cast<std::ptrdiff_t>(off));
        label = "Fragment(" + st.label + ":t" + std::to_string(t) + ")";
      }
      std::vector<SoeNode::FragmentInput> inputs;
      for (const StagedInput& in : st.inputs) {
        const std::vector<Box>& boxes = outbox[in.producer_stage];
        const Box* rows = &boxes[boxes.size() == 1 ? 0 : t];
        inputs.push_back({in.name, in.width, rows});
      }
      int served_by = -1;
      uint64_t before_exec = last_stats_.total_exec_nanos;
      POLY_ASSIGN_OR_RETURN(
          ResultSet part,
          RunFragmentTask(label, candidates, st.by_partition, task_plan, inputs,
                          st.mode == ExchangeMode::kGather, &served_by));
      node_nanos[served_by] += last_stats_.total_exec_nanos - before_exec;
      ++last_stats_.fragments;
      if (st.mode == ExchangeMode::kGather) {
        for (Row& row : part.rows) gathered.rows.push_back(std::move(row));
      } else if (st.mode == ExchangeMode::kBroadcast) {
        for (Row& row : part.rows) {
          outbox[s][0].emplace_back(served_by, std::move(row));
        }
      } else {
        size_t buckets = outbox[s].size();
        for (Row& row : part.rows) {
          // Same FNV fold as the executor's group/join keys: equal key
          // values always land on the same consumer.
          size_t h = 1469598103934665603ULL;
          for (size_t key : st.keys) h = (h ^ row[key].Hash()) * 1099511628211ULL;
          outbox[s][h % buckets].emplace_back(served_by, std::move(row));
        }
      }
    }
  }

  last_stats_.nodes_used = node_nanos.size();
  for (const auto& [_, nanos] : node_nanos) {
    last_stats_.makespan_nanos = std::max(last_stats_.makespan_nanos, nanos);
  }
  cm_.dqp_queries->Add(1);
  cm_.dqp_result_bytes->Add(last_stats_.result_bytes_gathered);
  cm_.dqp_shuffle_bytes->Add(last_stats_.shuffle_bytes);
  cm_.dqp_fragments->Add(last_stats_.fragments);
  FinishTrace("DistributedQuery(" + dplan.strategy + ")", trace_start, &gathered);
  return gathered;
}

namespace {

/// Mergeable partial accumulator.
struct Partial {
  double sum = 0;
  double count = 0;
  Value min, max;
  bool has_minmax = false;
};

/// What each user aggregate needs from the partials.
struct AggPlanEntry {
  AggFunc func;
  size_t partial_index;  ///< index into the per-node partial column list
};

}  // namespace

StatusOr<ResultSet> SoeCluster::DistributedAggregate(const std::string& table,
                                                     const ExprPtr& predicate,
                                                     const std::string& group_column,
                                                     std::vector<AggSpec> aggregates) {
  PumpFaults();
  POLY_ASSIGN_OR_RETURN(const CatalogService::TableInfo* info, catalog_.Lookup(table));
  last_stats_ = DistributedQueryStats{};
  last_stats_.partitions = info->spec.num_partitions;
  uint64_t trace_start = net_.virtual_nanos();
  if (trace_) task_spans_.clear();

  int group_col = -1;
  if (!group_column.empty()) {
    POLY_ASSIGN_OR_RETURN(size_t g, info->schema.IndexOf(group_column));
    group_col = static_cast<int>(g);
  }

  // Rewrite user aggregates into mergeable partials: AVG -> SUM + COUNT;
  // everything else maps 1:1. Partial i occupies one output column of the
  // per-partition local aggregation.
  std::vector<AggSpec> partial_aggs;
  std::vector<AggPlanEntry> plan;
  std::vector<AggFunc> partial_kind;
  for (const AggSpec& agg : aggregates) {
    if (agg.func == AggFunc::kAvg) {
      plan.push_back({AggFunc::kAvg, partial_aggs.size()});
      partial_aggs.push_back({AggFunc::kSum, agg.input, "s"});
      partial_kind.push_back(AggFunc::kSum);
      partial_aggs.push_back({AggFunc::kCount, agg.input, "c"});
      partial_kind.push_back(AggFunc::kCount);
    } else {
      plan.push_back({agg.func, partial_aggs.size()});
      partial_aggs.push_back({agg.func, agg.input, "p"});
      partial_kind.push_back(agg.func);
    }
  }

  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  std::unordered_map<Value, std::vector<Partial>, ValueHash> groups;
  std::vector<Value> group_order;

  std::unordered_map<int, uint64_t> node_nanos;
  for (size_t p = 0; p < info->spec.num_partitions; ++p) {
    PlanBuilder builder = PlanBuilder::Scan(PartitionTableName(table, p));
    if (predicate) builder = std::move(builder).Filter(predicate);
    std::vector<size_t> group_by;
    if (group_col >= 0) group_by.push_back(static_cast<size_t>(group_col));
    PlanPtr local_plan = std::move(builder).Aggregate(group_by, partial_aggs).Build();

    int served_by = -1;
    uint64_t before_exec = last_stats_.total_exec_nanos;
    POLY_ASSIGN_OR_RETURN(ResultSet partial, RunPartitionTask(*info, p, local_plan,
                                                              &served_by));
    node_nanos[served_by] += last_stats_.total_exec_nanos - before_exec;

    for (const Row& row : partial.rows) {
      Value key = group_col >= 0 ? row[0] : Value::Null();
      size_t base = group_col >= 0 ? 1 : 0;
      auto it = groups.find(key);
      if (it == groups.end()) {
        it = groups.emplace(key, std::vector<Partial>(partial_aggs.size())).first;
        group_order.push_back(key);
      }
      std::vector<Partial>& acc = it->second;
      for (size_t a = 0; a < partial_aggs.size(); ++a) {
        const Value& v = row[base + a];
        if (v.is_null()) continue;
        Partial& part = acc[a];
        switch (partial_kind[a]) {
          case AggFunc::kSum:
            part.sum += v.NumericValue();
            part.count += 1;  // marks non-null
            break;
          case AggFunc::kCount:
            part.count += v.NumericValue();
            break;
          case AggFunc::kMin:
            if (!part.has_minmax || v < part.min) part.min = v;
            part.has_minmax = true;
            break;
          case AggFunc::kMax:
            if (!part.has_minmax || part.max < v) part.max = v;
            part.has_minmax = true;
            break;
          case AggFunc::kAvg:
            break;  // never a partial kind
        }
      }
    }
  }

  last_stats_.nodes_used = node_nanos.size();
  for (const auto& [_, nanos] : node_nanos) {
    last_stats_.makespan_nanos = std::max(last_stats_.makespan_nanos, nanos);
  }
  cm_.dqp_queries->Add(1);
  cm_.dqp_result_bytes->Add(last_stats_.result_bytes_gathered);

  // Finalize.
  ResultSet out;
  if (group_col >= 0) out.column_names.push_back(group_column);
  for (const AggSpec& agg : aggregates) out.column_names.push_back(agg.output_name);
  // Global aggregate with zero partial rows still yields one zero row.
  if (group_col < 0 && group_order.empty()) {
    groups.emplace(Value::Null(), std::vector<Partial>(partial_aggs.size()));
    group_order.push_back(Value::Null());
  }
  for (const Value& key : group_order) {
    const std::vector<Partial>& acc = groups[key];
    Row row;
    if (group_col >= 0) row.push_back(key);
    for (const AggPlanEntry& entry : plan) {
      const Partial& a = acc[entry.partial_index];
      switch (entry.func) {
        case AggFunc::kCount:
          row.push_back(Value::Int(static_cast<int64_t>(a.count)));
          break;
        case AggFunc::kSum:
          row.push_back(a.count > 0 ? Value::Dbl(a.sum) : Value::Null());
          break;
        case AggFunc::kMin:
          row.push_back(a.has_minmax ? a.min : Value::Null());
          break;
        case AggFunc::kMax:
          row.push_back(a.has_minmax ? a.max : Value::Null());
          break;
        case AggFunc::kAvg: {
          const Partial& count_part = acc[entry.partial_index + 1];
          row.push_back(count_part.count > 0
                            ? Value::Dbl(a.sum / count_part.count)
                            : Value::Null());
          break;
        }
      }
    }
    out.rows.push_back(std::move(row));
  }
  FinishTrace("DistributedAggregate(" + table + ")", trace_start, &out);
  return out;
}

StatusOr<ResultSet> SoeCluster::DistributedScan(const std::string& table,
                                                const ExprPtr& predicate) {
  PumpFaults();
  POLY_ASSIGN_OR_RETURN(const CatalogService::TableInfo* info, catalog_.Lookup(table));
  last_stats_ = DistributedQueryStats{};
  last_stats_.partitions = info->spec.num_partitions;
  uint64_t trace_start = net_.virtual_nanos();
  if (trace_) task_spans_.clear();
  ResultSet out;
  for (size_t c = 0; c < info->schema.num_columns(); ++c) {
    out.column_names.push_back(info->schema.column(c).name);
  }
  std::unordered_map<int, uint64_t> node_nanos;
  for (size_t p = 0; p < info->spec.num_partitions; ++p) {
    PlanBuilder builder = PlanBuilder::Scan(PartitionTableName(table, p));
    if (predicate) builder = std::move(builder).Filter(predicate);
    PlanPtr local_plan = std::move(builder).Build();
    int served_by = -1;
    uint64_t before_exec = last_stats_.total_exec_nanos;
    POLY_ASSIGN_OR_RETURN(ResultSet part, RunPartitionTask(*info, p, local_plan,
                                                           &served_by));
    node_nanos[served_by] += last_stats_.total_exec_nanos - before_exec;
    for (Row& row : part.rows) {
      out.rows.push_back(std::move(row));
    }
  }
  last_stats_.nodes_used = node_nanos.size();
  for (const auto& [_, nanos] : node_nanos) {
    last_stats_.makespan_nanos = std::max(last_stats_.makespan_nanos, nanos);
  }
  cm_.dqp_queries->Add(1);
  cm_.dqp_result_bytes->Add(last_stats_.result_bytes_gathered);
  FinishTrace("DistributedScan(" + table + ")", trace_start, &out);
  return out;
}

Status SoeCluster::SetNodeMode(int node, NodeMode mode) {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) {
    return Status::InvalidArgument("no node " + std::to_string(node));
  }
  nodes_[node]->set_mode(mode);
  return Status::OK();
}

Status SoeCluster::KillNode(int node) {
  POLY_RETURN_IF_ERROR(discovery_.MarkDown(node));
  net_.SetEndpointDown(node, true);
  cm_.node_kills->Add(1);
  return Status::OK();
}

Status SoeCluster::RestartNode(int node) {
  POLY_RETURN_IF_ERROR(discovery_.MarkUp(node));
  net_.SetEndpointDown(node, false);
  cm_.node_restarts->Add(1);
  return Status::OK();
}

Status SoeCluster::Rebalance() {
  // For every partition whose replica set contains dead nodes, place a new
  // replica on the least-loaded live node not already hosting it, rebuilt
  // by replaying the shared log (partitions are "prepackaged" for exactly
  // this fast redistribution, §IV-B).
  PumpFaults();
  std::vector<int> live = discovery_.LiveNodes();
  if (live.empty()) return Status::Unavailable("no live nodes");
  for (const std::string& table : catalog_.TableNames()) {
    POLY_ASSIGN_OR_RETURN(CatalogService::TableInfo * info, catalog_.MutableLookup(table));
    for (size_t p = 0; p < info->placement.size(); ++p) {
      std::vector<int>& replicas = info->placement[p];
      int live_count = 0;
      for (int n : replicas) {
        if (discovery_.IsAlive(n)) ++live_count;
      }
      while (live_count < info->replication) {
        // Least-hosting live candidate not already in the replica set.
        int best = -1;
        size_t best_hosted = ~size_t{0};
        for (int n : live) {
          bool already = false;
          for (int r : replicas) already |= (r == n);
          if (already) continue;
          size_t hosted = nodes_[n]->HostedPartitions().size();
          if (hosted < best_hosted) {
            best_hosted = hosted;
            best = n;
          }
        }
        if (best < 0) break;  // not enough live nodes
        // History the node already skipped for this partition, then the
        // shared tail it has not reached yet. The whole rebuild retries as
        // a unit; the backfill cursor makes an interrupted replay resume
        // instead of double-applying (AlreadyExists marks such a resume).
        POLY_RETURN_IF_ERROR(WithRetries("partition rebuild", [&]() -> Status {
          Status hosted = nodes_[best]->HostPartition(table, p, info->schema);
          if (!hosted.ok() && hosted.code() != StatusCode::kAlreadyExists) return hosted;
          POLY_RETURN_IF_ERROR(nodes_[best]->BackfillPartition(log_, table, p));
          return nodes_[best]->ApplyUpTo(log_, log_.Tail());
        }));
        replicas.push_back(best);
        ++live_count;
        cm_.rebuilds->Add(1);
      }
    }
  }
  return Status::OK();
}

StatusOr<uint64_t> SoeCluster::PollNode(int node) {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) {
    return Status::InvalidArgument("no node " + std::to_string(node));
  }
  PumpFaults();
  uint64_t before = nodes_[node]->records_applied();
  POLY_RETURN_IF_ERROR(WithRetries(
      "poll", [&] { return nodes_[node]->ApplyUpTo(log_, log_.Tail()); }));
  uint64_t applied = nodes_[node]->records_applied() - before;
  stats_.RecordApply(node, applied);
  return applied;
}

uint64_t SoeCluster::Staleness(int node) const {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return 0;
  return log_.Tail() - nodes_[node]->applied_offset();
}

}  // namespace poly
