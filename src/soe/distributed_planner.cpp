#include "soe/distributed_planner.h"

#include <memory>

#include "soe/partition.h"

namespace poly {

namespace {

/// Splits a predicate into top-level conjuncts.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (!e) return;
  if (e->kind() == ExprKind::kAnd) {
    SplitConjuncts(e->left(), out);
    SplitConjuncts(e->right(), out);
  } else {
    out->push_back(e);
  }
}

/// Partition pruning (DESIGN.md §14.1): an equality conjunct on the
/// partitioning column pins the scan to one partition; anything else scans
/// them all. Conservative by design — a wrong prune would lose rows.
std::vector<size_t> PrunePartitions(const ExprPtr& predicate,
                                    const CatalogService::TableInfo& info) {
  std::vector<size_t> all(info.spec.num_partitions);
  for (size_t p = 0; p < all.size(); ++p) all[p] = p;
  if (!predicate) return all;
  auto key_col = info.schema.IndexOf(info.spec.column);
  if (!key_col.ok()) return all;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(predicate, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    if (c->kind() != ExprKind::kCompare || c->cmp_op() != CmpOp::kEq) continue;
    const ExprPtr& l = c->left();
    const ExprPtr& r = c->right();
    const Expr* col = nullptr;
    const Expr* lit = nullptr;
    if (l && r && l->kind() == ExprKind::kColumn && r->kind() == ExprKind::kLiteral) {
      col = l.get();
      lit = r.get();
    } else if (l && r && l->kind() == ExprKind::kLiteral &&
               r->kind() == ExprKind::kColumn) {
      col = r.get();
      lit = l.get();
    } else {
      continue;
    }
    if (col->column_index() != *key_col) continue;
    return {PartitionOf(lit->literal(), info.spec)};
  }
  return all;
}

/// Staging table name of stage `index` ("__dist." keeps it clear of user
/// tables and the "#p"-suffixed partition tables on the nodes).
std::string StageOutputName(size_t index) {
  return "__dist.x" + std::to_string(index);
}

std::vector<std::string> SchemaColumnNames(const Schema& schema) {
  std::vector<std::string> names;
  names.reserve(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    names.push_back(schema.column(c).name);
  }
  return names;
}

PlanPtr ScanOf(const std::string& table) {
  auto scan = std::make_shared<PlanNode>();
  scan->kind = PlanKind::kScan;
  scan->table = table;
  return scan;
}

/// Deep copy of `root` with the subtree whose node is `target` replaced by
/// `replacement` (pointer identity; expressions stay shared).
PlanPtr ReplaceSubtree(const PlanPtr& root, const PlanNode* target,
                       const PlanPtr& replacement) {
  if (root.get() == target) return replacement;
  auto copy = std::make_shared<PlanNode>(*root);
  for (auto& child : copy->children) {
    child = ReplaceSubtree(child, target, replacement);
  }
  return copy;
}

const char* ModeName(ExchangeMode mode) {
  switch (mode) {
    case ExchangeMode::kGather: return "gather";
    case ExchangeMode::kBroadcast: return "broadcast";
    case ExchangeMode::kRepartition: return "repartition";
  }
  return "?";
}

}  // namespace

std::string DistributedPlan::ToString() const {
  std::string out = "strategy=" + strategy + "\n";
  for (size_t s = 0; s < stages.size(); ++s) {
    const FragmentStage& st = stages[s];
    out += "stage " + std::to_string(s) + " [" + st.label + "]: ";
    if (st.by_partition) {
      out += st.table + " x" + std::to_string(st.partitions.size()) + " partitions";
    } else {
      out += std::to_string(st.num_tasks) + " node tasks";
    }
    out += " -> " + std::string(ModeName(st.mode));
    if (!st.output_name.empty()) out += " as " + st.output_name;
    out += "\n";
    if (st.plan) out += st.plan->ToString(1);
  }
  if (residual) {
    out += "residual (coordinator):\n" + residual->ToString(1);
  }
  return out;
}

StatusOr<DistributedPlan> DistributedPlanner::Plan(const PlanPtr& optimized) {
  if (!optimized) return Status::InvalidArgument("null plan");
  int live = static_cast<int>(discovery_->LiveNodes().size());
  if (live <= 0) return Status::Unavailable("no live nodes to plan onto");

  DistributedPlan out;

  // Peel coordinator-side residual operators off the top: limit, sort,
  // projection, and filters (a filter here is HAVING or an un-pushable
  // cross-side join conjunct — both run fine over the gathered core rows).
  const PlanNode* core = optimized.get();
  while ((core->kind == PlanKind::kLimit || core->kind == PlanKind::kSort ||
          core->kind == PlanKind::kProject ||
          core->kind == PlanKind::kFilter) &&
         core->children.size() == 1) {
    core = core->children[0].get();
  }

  POLY_ASSIGN_OR_RETURN(bool placed, LowerCore(*core, live, &out));
  if (!placed) {
    out.stages.clear();
    out.strategy = "gather";
    out.use_gather_fallback = true;
    return out;
  }

  if (core != optimized.get()) {
    out.residual_input = "__dist.gathered";
    out.residual = ReplaceSubtree(optimized, core, ScanOf(out.residual_input));
  }
  return out;
}

StatusOr<bool> DistributedPlanner::LowerCore(const PlanNode& core, int live,
                                             DistributedPlan* out) {
  // Case A: bare scan — per-partition gather with partition pruning.
  if (core.kind == PlanKind::kScan) {
    POLY_ASSIGN_OR_RETURN(const CatalogService::TableInfo* info,
                          catalog_->Lookup(core.table));
    FragmentStage stage;
    stage.by_partition = true;
    stage.table = core.table;
    stage.partitions = PrunePartitions(core.scan_predicate, *info);
    stage.plan = PlanBuilder::From(std::make_shared<PlanNode>(core))
                     .Exchange(ExchangeMode::kGather)
                     .Build();
    stage.mode = ExchangeMode::kGather;
    stage.output_width = info->schema.num_columns();
    stage.label = "scan(" + core.table + ")";
    out->gather_columns = SchemaColumnNames(info->schema);
    out->stages.push_back(std::move(stage));
    out->strategy = "scan";
    return true;
  }

  // Case B/D: aggregate of any key arity over a scan or an equi-join.
  if (core.kind == PlanKind::kAggregate && core.children.size() == 1) {
    const PlanNode* input = core.children[0].get();

    if (input->kind == PlanKind::kScan) {
      POLY_ASSIGN_OR_RETURN(const CatalogService::TableInfo* info,
                            catalog_->Lookup(input->table));
      FragmentStage site;
      site.by_partition = true;
      site.table = input->table;
      site.partitions = PrunePartitions(input->scan_predicate, *info);
      site.label = "partial-aggregate(" + input->table + ")";
      LowerTwoPhaseAggregate(core, std::make_shared<PlanNode>(*input),
                             std::move(site), live,
                             SchemaColumnNames(info->schema), out);
      out->strategy = "two-phase-aggregate";
      return true;
    }

    // Filters between the aggregate and the join (cross-side conjuncts the
    // optimizer could not push into a single scan) execute inside the
    // consumer fragment, right above the join.
    std::vector<const PlanNode*> mid_filters;
    while (input->kind == PlanKind::kFilter && input->children.size() == 1) {
      mid_filters.push_back(input);
      input = input->children[0].get();
    }
    if (input->kind == PlanKind::kHashJoin) {
      JoinLowering join;
      POLY_ASSIGN_OR_RETURN(bool ok, LowerJoinInputs(*input, live, out, &join));
      if (!ok) return false;
      PlanPtr body = join.body;
      for (auto it = mid_filters.rbegin(); it != mid_filters.rend(); ++it) {
        auto filter = std::make_shared<PlanNode>(**it);
        filter->children = {body};
        body = filter;
      }
      FragmentStage site;
      site.by_partition = join.consumer_by_partition;
      site.table = join.consumer_table;
      site.partitions = join.consumer_partitions;
      site.num_tasks = join.consumer_tasks;
      site.inputs = join.consumer_inputs;
      site.label = "join+partial-aggregate";
      LowerTwoPhaseAggregate(core, std::move(body), std::move(site), live,
                             join.columns, out);
      out->strategy = join.strategy + "+aggregate";
      return true;
    }
    return false;
  }

  // Case C: two-table equi-join, gathered at the coordinator.
  if (core.kind == PlanKind::kHashJoin) {
    JoinLowering join;
    POLY_ASSIGN_OR_RETURN(bool ok, LowerJoinInputs(core, live, out, &join));
    if (!ok) return false;
    FragmentStage stage;
    stage.by_partition = join.consumer_by_partition;
    stage.table = join.consumer_table;
    stage.partitions = join.consumer_partitions;
    stage.num_tasks = join.consumer_tasks;
    stage.inputs = join.consumer_inputs;
    stage.plan =
        PlanBuilder::From(join.body).Exchange(ExchangeMode::kGather).Build();
    stage.mode = ExchangeMode::kGather;
    stage.output_width = join.width;
    stage.label = "join";
    out->gather_columns = join.columns;
    out->stages.push_back(std::move(stage));
    out->strategy = join.strategy;
    return true;
  }

  return false;  // three-way joins, subplans we do not model -> gather
}

StatusOr<bool> DistributedPlanner::LowerJoinInputs(const PlanNode& join,
                                                   int live,
                                                   DistributedPlan* out,
                                                   JoinLowering* lowering) {
  if (join.children.size() != 2) return false;
  const PlanNode& left = *join.children[0];
  const PlanNode& right = *join.children[1];
  if (left.kind != PlanKind::kScan || right.kind != PlanKind::kScan) {
    return false;  // deeper shapes (join of join) fall back to gather
  }
  POLY_ASSIGN_OR_RETURN(const CatalogService::TableInfo* linfo,
                        catalog_->Lookup(left.table));
  POLY_ASSIGN_OR_RETURN(const CatalogService::TableInfo* rinfo,
                        catalog_->Lookup(right.table));
  size_t left_width = linfo->schema.num_columns();
  size_t right_width = rinfo->schema.num_columns();
  if (join.left_key >= left_width || join.right_key >= right_width) {
    return false;
  }
  lowering->width = left_width + right_width;
  lowering->columns = SchemaColumnNames(linfo->schema);
  for (const std::string& name : SchemaColumnNames(rinfo->schema)) {
    lowering->columns.push_back(name);
  }

  // Join-strategy rule (DESIGN.md §14.3): broadcast the smaller side when
  // its catalog row estimate is at or below the threshold; otherwise
  // repartition both sides by join key.
  bool left_small = linfo->approx_rows <= rinfo->approx_rows;
  uint64_t small_rows = left_small ? linfo->approx_rows : rinfo->approx_rows;

  if (small_rows <= options_.broadcast_threshold_rows) {
    const PlanNode& small = left_small ? left : right;
    const PlanNode& big = left_small ? right : left;
    const CatalogService::TableInfo* small_info = left_small ? linfo : rinfo;
    const CatalogService::TableInfo* big_info = left_small ? rinfo : linfo;

    FragmentStage bcast;
    bcast.by_partition = true;
    bcast.table = small.table;
    bcast.partitions = PrunePartitions(small.scan_predicate, *small_info);
    bcast.plan = PlanBuilder::From(std::make_shared<PlanNode>(small))
                     .Exchange(ExchangeMode::kBroadcast)
                     .Build();
    bcast.mode = ExchangeMode::kBroadcast;
    bcast.output_name = StageOutputName(out->stages.size());
    bcast.output_width = left_small ? left_width : right_width;
    bcast.label = "broadcast(" + small.table + ")";
    int bcast_index = static_cast<int>(out->stages.size());
    std::string bcast_name = bcast.output_name;
    size_t bcast_width = bcast.output_width;
    out->stages.push_back(std::move(bcast));

    // The big side's partition tasks join their local rows against the
    // staged broadcast — original left/right order (and thus the build
    // side and output column order) is preserved.
    PlanPtr big_scan = std::make_shared<PlanNode>(big);
    PlanPtr small_scan = ScanOf(bcast_name);
    auto body = std::make_shared<PlanNode>();
    body->kind = PlanKind::kHashJoin;
    body->left_key = join.left_key;
    body->right_key = join.right_key;
    body->children = left_small ? std::vector<PlanPtr>{small_scan, big_scan}
                                : std::vector<PlanPtr>{big_scan, small_scan};
    lowering->body = body;
    lowering->consumer_by_partition = true;
    lowering->consumer_table = big.table;
    lowering->consumer_partitions = PrunePartitions(big.scan_predicate, *big_info);
    lowering->consumer_inputs = {{bcast_name, bcast_width, bcast_index}};
    lowering->strategy = "broadcast-join";
    return true;
  }

  // Shuffle: both sides repartition by join key over the fabric; each
  // consumer node joins exactly the co-hashed slices.
  auto MakeShuffleStage = [&](const PlanNode& side,
                              const CatalogService::TableInfo* info,
                              size_t key, size_t width) {
    FragmentStage stage;
    stage.by_partition = true;
    stage.table = side.table;
    stage.partitions = PrunePartitions(side.scan_predicate, *info);
    stage.plan = PlanBuilder::From(std::make_shared<PlanNode>(side))
                     .Exchange(ExchangeMode::kRepartition, {key})
                     .Build();
    stage.mode = ExchangeMode::kRepartition;
    stage.keys = {key};
    stage.output_name = StageOutputName(out->stages.size());
    stage.output_width = width;
    stage.label = "shuffle(" + side.table + ")";
    return stage;
  };

  FragmentStage shl = MakeShuffleStage(left, linfo, join.left_key, left_width);
  int shl_index = static_cast<int>(out->stages.size());
  std::string shl_name = shl.output_name;
  out->stages.push_back(std::move(shl));
  FragmentStage shr = MakeShuffleStage(right, rinfo, join.right_key, right_width);
  int shr_index = static_cast<int>(out->stages.size());
  std::string shr_name = shr.output_name;
  out->stages.push_back(std::move(shr));

  auto body = std::make_shared<PlanNode>();
  body->kind = PlanKind::kHashJoin;
  body->left_key = join.left_key;
  body->right_key = join.right_key;
  body->children = {ScanOf(shl_name), ScanOf(shr_name)};
  lowering->body = body;
  lowering->consumer_by_partition = false;
  lowering->consumer_tasks = live;
  lowering->consumer_inputs = {{shl_name, left_width, shl_index},
                               {shr_name, right_width, shr_index}};
  lowering->strategy = "shuffle-join";
  return true;
}

void DistributedPlanner::LowerTwoPhaseAggregate(
    const PlanNode& agg, PlanPtr body, FragmentStage partial_site, int live,
    const std::vector<std::string>& input_columns, DistributedPlan* out) {
  size_t k = agg.group_by.size();
  PartialAggLayout layout = PartialAggLayout::For(agg.aggregates);

  // Phase 1: partial aggregation where the data (or the join output)
  // lives, repartitioned by the leading group-key columns of its own
  // output. A global aggregate (k = 0) funnels every partial to one task.
  std::vector<size_t> repart_keys(k);
  for (size_t g = 0; g < k; ++g) repart_keys[g] = g;

  FragmentStage partial = std::move(partial_site);
  partial.plan = PlanBuilder::From(std::move(body))
                     .PartialAggregate(agg.group_by, agg.aggregates)
                     .Exchange(ExchangeMode::kRepartition, repart_keys)
                     .Build();
  partial.mode = ExchangeMode::kRepartition;
  partial.keys = repart_keys;
  partial.output_name = StageOutputName(out->stages.size());
  partial.output_width = k + layout.num_slots();
  int partial_index = static_cast<int>(out->stages.size());
  std::string partial_name = partial.output_name;
  size_t partial_width = partial.output_width;
  out->stages.push_back(std::move(partial));

  // Phase 2: merge + finalize on the shuffle consumers, gathered to the
  // coordinator.
  std::vector<size_t> final_keys(k);
  for (size_t g = 0; g < k; ++g) final_keys[g] = g;
  FragmentStage fin;
  fin.by_partition = false;
  fin.num_tasks = k == 0 ? 1 : live;
  fin.inputs = {{partial_name, partial_width, partial_index}};
  fin.plan = PlanBuilder::From(ScanOf(partial_name))
                 .FinalAggregate(final_keys, agg.aggregates)
                 .Exchange(ExchangeMode::kGather)
                 .Build();
  fin.mode = ExchangeMode::kGather;
  fin.output_width = k + agg.aggregates.size();
  fin.label = "final-aggregate";
  out->stages.push_back(std::move(fin));

  out->gather_columns.clear();
  for (size_t g : agg.group_by) {
    out->gather_columns.push_back(g < input_columns.size() ? input_columns[g]
                                                           : "_g");
  }
  for (const AggSpec& spec : agg.aggregates) {
    out->gather_columns.push_back(spec.output_name);
  }
}

}  // namespace poly
