#ifndef POLY_SOE_PARTITION_H_
#define POLY_SOE_PARTITION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "types/schema.h"

namespace poly {

/// Multi-level horizontal partitioning (§IV-B: "the scale-out extension
/// supports multi-level horizontal partitioning (range and hash)").
struct PartitionSpec {
  enum class Kind { kHash, kRange };
  Kind kind = Kind::kHash;
  std::string column;             ///< partitioning key
  size_t num_partitions = 1;      ///< for hash
  std::vector<Value> range_bounds;  ///< for range: partition i covers
                                    ///< [bounds[i-1], bounds[i]); num = bounds+1

  static PartitionSpec Hash(std::string column, size_t num_partitions) {
    PartitionSpec s;
    s.kind = Kind::kHash;
    s.column = std::move(column);
    s.num_partitions = num_partitions;
    return s;
  }
  static PartitionSpec Range(std::string column, std::vector<Value> bounds) {
    PartitionSpec s;
    s.kind = Kind::kRange;
    s.column = std::move(column);
    s.range_bounds = std::move(bounds);
    s.num_partitions = s.range_bounds.size() + 1;
    return s;
  }
};

/// Partition index of a key value under a spec.
size_t PartitionOf(const Value& key, const PartitionSpec& spec);

/// Local table name of one partition on a node.
std::string PartitionTableName(const std::string& table, size_t partition);

}  // namespace poly

#endif  // POLY_SOE_PARTITION_H_
