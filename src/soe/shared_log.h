#ifndef POLY_SOE_SHARED_LOG_H_
#define POLY_SOE_SHARED_LOG_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "soe/network.h"

namespace poly {

/// CORFU-style distributed shared log (§IV-B, [15]): a sequencer hands out
/// globally ordered offsets; each offset maps deterministically to a
/// replica set of log-unit nodes; readers tail the log. "The log stores
/// all changes in a transactional consistent way"; the transaction broker
/// (transaction_broker.h) serializes transactions through Append.
///
/// All unit traffic goes through the fault fabric as routed messages
/// (writer/reader endpoint <-> `LogUnitEndpoint(unit)`), so a lossy or
/// partitioned network surfaces as Status errors here, never as silent
/// success. An append that reaches zero replicas consumes no offset — the
/// visible log stays dense and replay never stalls on a hole.
class SharedLog {
 public:
  struct Options {
    int num_log_units = 3;
    int replication = 2;
    /// When non-empty, every replica write is mirrored to
    /// `<durable_dir>/unit<k>.log` with fsync before the append returns,
    /// and construction replays whatever those files already hold (the
    /// sequencer resumes past the highest recovered offset). A truncated
    /// tail frame — a crash mid-write — is tolerated and discarded. This is
    /// the scale-out sibling of RedoLog::OpenFile: it lets a *fresh*
    /// cluster recover the shared log across a process "crash".
    std::string durable_dir;
  };

  /// `net` may be null (no accounting, no faults).
  explicit SharedLog(Options options, SimulatedNetwork* net = nullptr);
  SharedLog() : SharedLog(Options()) {}
  ~SharedLog();

  SharedLog(const SharedLog&) = delete;
  SharedLog& operator=(const SharedLog&) = delete;

  /// Appends a record; returns its global offset (0-based, dense).
  /// `writer` is the sending endpoint (defaults to the coordinator).
  /// Succeeds if at least one replica stores the record (the survivors
  /// keep it durable; ReReplicate tops the copy count back up). Fails
  /// Unavailable — without consuming an offset — if no replica could be
  /// reached, so the caller can retry the same record safely.
  StatusOr<uint64_t> Append(std::string record, int writer = kCoordinatorEndpoint);

  /// Reads one record from any live, reachable replica.
  StatusOr<std::string> Read(uint64_t offset, int reader = kCoordinatorEndpoint) const;

  /// Reads [from, to) in order; fails at the first unreadable offset.
  StatusOr<std::vector<std::string>> ReadRange(uint64_t from, uint64_t to,
                                               int reader = kCoordinatorEndpoint) const;

  /// One past the last appended offset ("high-water mark").
  uint64_t Tail() const;

  /// Fails a log unit; offsets survive while >= 1 replica lives.
  Status KillUnit(int unit);
  /// Revives a failed unit (it rejoins empty of anything it missed until
  /// ReReplicate copies records back).
  Status ReviveUnit(int unit);
  /// Copies under-replicated offsets onto surviving units.
  Status ReReplicate();

  int num_units() const { return static_cast<int>(units_.size()); }
  uint64_t records_stored(int unit) const;

  /// Mirrors log activity into `registry` under `soe.log.*` (appends,
  /// append_failures, replica_writes, reads, read_failovers,
  /// rereplicated_records). Attach before concurrent use; nullptr detaches.
  void set_metrics(metrics::Registry* registry);

 private:
  /// Deterministic replica set of an offset (round-robin chains).
  std::vector<int> ReplicasOf(uint64_t offset) const;

  /// Replays `<durable_dir>/unit<k>.log` files into memory and reopens them
  /// for appending. Called once from the constructor.
  void LoadDurable();
  /// Mirrors one replica write to its unit file (fwrite + fflush + fsync).
  /// No-op for memory-only logs. Caller holds mu_.
  void PersistRecord(int unit, uint64_t offset, const std::string& record);

  /// Cached registry metric pointers (all null when no registry attached).
  struct LogMetrics {
    metrics::Counter* appends = nullptr;
    metrics::Counter* append_failures = nullptr;
    metrics::Counter* replica_writes = nullptr;
    metrics::Counter* reads = nullptr;
    metrics::Counter* read_failovers = nullptr;
    metrics::Counter* rereplicated_records = nullptr;
  };

  Options options_;
  SimulatedNetwork* net_;
  LogMetrics metrics_;
  mutable std::mutex mu_;
  std::atomic<uint64_t> sequencer_{0};  ///< published tail; advanced under mu_
  std::vector<std::map<uint64_t, std::string>> units_;  ///< unit -> offset -> record
  std::vector<bool> unit_alive_;
  std::vector<std::FILE*> unit_files_;  ///< per-unit append handles; empty = memory-only
};

}  // namespace poly

#endif  // POLY_SOE_SHARED_LOG_H_
