#ifndef POLY_SOE_SHARED_LOG_H_
#define POLY_SOE_SHARED_LOG_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "soe/network.h"

namespace poly {

/// CORFU-style distributed shared log (§IV-B, [15]): a sequencer hands out
/// globally ordered offsets; each offset maps deterministically to a
/// replica set of log-unit nodes; readers tail the log. "The log stores
/// all changes in a transactional consistent way"; the transaction broker
/// (transaction_broker.h) serializes transactions through Append.
class SharedLog {
 public:
  struct Options {
    int num_log_units = 3;
    int replication = 2;
  };

  /// `net` may be null (no accounting).
  explicit SharedLog(Options options, SimulatedNetwork* net = nullptr);
  SharedLog() : SharedLog(Options()) {}

  /// Appends a record; returns its global offset (0-based, dense).
  StatusOr<uint64_t> Append(std::string record);

  /// Reads one record (from any live replica).
  StatusOr<std::string> Read(uint64_t offset) const;

  /// Reads [from, to) in order; stops early at a hole (never happens with
  /// the built-in sequencer) or a lost offset.
  StatusOr<std::vector<std::string>> ReadRange(uint64_t from, uint64_t to) const;

  /// One past the last appended offset ("high-water mark").
  uint64_t Tail() const;

  /// Fails a log unit; offsets survive while >= 1 replica lives.
  Status KillUnit(int unit);
  /// Copies under-replicated offsets onto surviving units.
  Status ReReplicate();

  int num_units() const { return static_cast<int>(units_.size()); }
  uint64_t records_stored(int unit) const;

 private:
  /// Deterministic replica set of an offset (round-robin chains).
  std::vector<int> ReplicasOf(uint64_t offset) const;

  Options options_;
  SimulatedNetwork* net_;
  mutable std::mutex mu_;
  std::atomic<uint64_t> sequencer_{0};
  std::vector<std::map<uint64_t, std::string>> units_;  ///< unit -> offset -> record
  std::vector<bool> unit_alive_;
};

}  // namespace poly

#endif  // POLY_SOE_SHARED_LOG_H_
