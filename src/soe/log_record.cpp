#include "soe/log_record.h"

#include "types/value_serde.h"

namespace poly {

std::string SoeLogRecord::Encode() const {
  Serializer s;
  s.PutVarint(writes.size());
  for (const SoeWrite& w : writes) {
    s.PutString(w.table);
    s.PutVarint(w.partition);
    s.PutVarint(w.row.size());
    for (const Value& v : w.row) WriteValue(&s, v);
  }
  return s.Release();
}

StatusOr<SoeLogRecord> SoeLogRecord::Decode(const std::string& data) {
  Deserializer d(data);
  SoeLogRecord rec;
  POLY_ASSIGN_OR_RETURN(uint64_t n, d.GetVarint());
  rec.writes.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SoeWrite w;
    POLY_ASSIGN_OR_RETURN(w.table, d.GetString());
    POLY_ASSIGN_OR_RETURN(uint64_t part, d.GetVarint());
    w.partition = part;
    POLY_ASSIGN_OR_RETURN(uint64_t width, d.GetVarint());
    w.row.reserve(width);
    for (uint64_t c = 0; c < width; ++c) {
      POLY_ASSIGN_OR_RETURN(Value v, ReadValue(&d));
      w.row.push_back(std::move(v));
    }
    rec.writes.push_back(std::move(w));
  }
  return rec;
}

}  // namespace poly
