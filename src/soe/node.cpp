#include "soe/node.h"

#include <chrono>

namespace poly {

Status SoeNode::HostPartition(const std::string& table, size_t partition,
                              const Schema& schema) {
  if (Hosts(table, partition)) {
    return Status::AlreadyExists("node " + std::to_string(id_) + " already hosts " +
                                 PartitionTableName(table, partition));
  }
  POLY_RETURN_IF_ERROR(
      db_.CreateTable(PartitionTableName(table, partition), schema).status());
  hosted_.emplace(table, partition);
  // Everything this node already replayed for its other partitions is owed
  // to the newcomer; ApplyUpTo covers offsets from here on.
  if (applied_offset_ > 0) {
    pending_backfill_[{table, partition}] = BackfillCursor{0, applied_offset_};
  }
  return Status::OK();
}

bool SoeNode::Hosts(const std::string& table, size_t partition) const {
  return hosted_.count({table, partition}) > 0;
}

std::vector<std::pair<std::string, size_t>> SoeNode::HostedPartitions() const {
  return {hosted_.begin(), hosted_.end()};
}

Status SoeNode::ApplyUpTo(const SharedLog& log, uint64_t target) {
  if (target > log.Tail()) target = log.Tail();
  while (applied_offset_ < target) {
    uint64_t offset = applied_offset_;
    POLY_ASSIGN_OR_RETURN(std::string raw, log.Read(offset, id_));
    POLY_ASSIGN_OR_RETURN(SoeLogRecord record, SoeLogRecord::Decode(raw));
    for (const SoeWrite& w : record.writes) {
      if (!Hosts(w.table, w.partition)) continue;
      POLY_ASSIGN_OR_RETURN(ColumnTable * t,
                            db_.GetTable(PartitionTableName(w.table, w.partition)));
      // Offset+1 keeps timestamps > 0 (0 is "never"). AppendVersion
      // publishes through the reader-safe version store (DESIGN.md §12),
      // so PartitionRowCount/ExecuteLocal snapshots taken concurrently with
      // log apply are bounded by the watermark instead of racing the append.
      POLY_RETURN_IF_ERROR(t->AppendVersion(w.row, offset + 1).status());
    }
    ++records_applied_;
    ++applied_offset_;
  }
  return Status::OK();
}

Status SoeNode::BackfillPartition(const SharedLog& log, const std::string& table,
                                  size_t partition) {
  auto it = pending_backfill_.find({table, partition});
  if (it == pending_backfill_.end()) return Status::OK();  // nothing owed
  POLY_ASSIGN_OR_RETURN(ColumnTable * t, db_.GetTable(PartitionTableName(table, partition)));
  BackfillCursor& cursor = it->second;
  while (cursor.next < cursor.end) {
    uint64_t offset = cursor.next;
    // The cursor advances only after the offset is fully applied, so a
    // failed read leaves a clean resume point for the caller's retry.
    POLY_ASSIGN_OR_RETURN(std::string raw, log.Read(offset, id_));
    POLY_ASSIGN_OR_RETURN(SoeLogRecord record, SoeLogRecord::Decode(raw));
    for (const SoeWrite& w : record.writes) {
      if (w.table != table || w.partition != partition) continue;
      POLY_RETURN_IF_ERROR(t->AppendVersion(w.row, offset + 1).status());
    }
    ++cursor.next;
  }
  pending_backfill_.erase(it);
  return Status::OK();
}

StatusOr<ResultSet> SoeNode::ExecuteLocal(const PlanPtr& plan) {
  auto start = std::chrono::steady_clock::now();
  // Everything applied from the log is committed; read it all.
  Executor exec(&db_, LatestCommittedView());
  auto result = exec.Execute(plan);
  rows_scanned_ += exec.stats().rows_scanned;
  ++queries_served_;
  busy_nanos_ += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return result;
}

StatusOr<ResultSet> SoeNode::ExecuteFragment(
    const PlanPtr& plan, const std::vector<FragmentInput>& inputs) {
  // Stage the exchanged inputs as transient tables. Names are planner-
  // generated ("__dist.*"), so they can never collide with hosted
  // partition tables; a leftover from an interrupted attempt is dropped
  // first so retries stay idempotent.
  for (const FragmentInput& input : inputs) {
    (void)db_.DropTable(input.name);
    std::vector<ColumnDef> defs;
    defs.reserve(input.width);
    for (size_t c = 0; c < input.width; ++c) {
      defs.emplace_back("_c" + std::to_string(c), DataType::kInt64);
    }
    auto created = db_.CreateTable(input.name, Schema(std::move(defs)));
    if (!created.ok()) return created.status();
    for (const auto& [producer, row] : *input.rows) {
      (void)producer;  // delivery was charged by the cluster
      auto appended = (*created)->AppendVersion(row, /*cts_stamp=*/1);
      if (!appended.ok()) {
        for (const FragmentInput& in : inputs) (void)db_.DropTable(in.name);
        return appended.status();
      }
    }
  }
  auto result = ExecuteLocal(plan);
  for (const FragmentInput& input : inputs) (void)db_.DropTable(input.name);
  return result;
}

StatusOr<uint64_t> SoeNode::PartitionRowCount(const std::string& table,
                                              size_t partition) const {
  POLY_ASSIGN_OR_RETURN(ColumnTable * t, db_.GetTable(PartitionTableName(table, partition)));
  return t->CountVisible(LatestCommittedView());
}

}  // namespace poly
