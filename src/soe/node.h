#ifndef POLY_SOE_NODE_H_
#define POLY_SOE_NODE_H_

#include <map>
#include <set>
#include <string>

#include "query/executor.h"
#include "soe/log_record.h"
#include "soe/partition.h"
#include "soe/shared_log.h"
#include "storage/database.h"

namespace poly {

/// Consistency class of a database node (§IV-B): OLTP nodes incorporate
/// the log synchronously inside the update/read path ("real time
/// transactional update"); OLAP nodes apply it asynchronously, trading
/// freshness for cheap reads ("not necessarily synchronously to the update
/// request").
enum class NodeMode { kOltp, kOlap };

/// One SOE process (the v2lqp executable of Figure 3): a query service
/// plus a data service over locally hosted horizontal partitions.
class SoeNode {
 public:
  SoeNode(int id, NodeMode mode) : id_(id), mode_(mode) {}

  SoeNode(const SoeNode&) = delete;
  SoeNode& operator=(const SoeNode&) = delete;

  int id() const { return id_; }
  NodeMode mode() const { return mode_; }
  void set_mode(NodeMode mode) { mode_ = mode; }

  /// Data service: starts hosting a partition (creates the local table).
  Status HostPartition(const std::string& table, size_t partition, const Schema& schema);
  bool Hosts(const std::string& table, size_t partition) const;
  std::vector<std::pair<std::string, size_t>> HostedPartitions() const;

  /// Data service: applies log records [applied_offset, target) that touch
  /// hosted partitions. The log offset+1 becomes the commit timestamp.
  /// Reads go over the fault fabric as this node; a failed read returns
  /// Unavailable with everything before it durably applied, so the caller
  /// can simply retry (replay is resumable, never double-applied).
  Status ApplyUpTo(const SharedLog& log, uint64_t target);

  /// Replays the history a partition just added to this node missed (used
  /// by Rebalance: the node is already past those offsets for its other
  /// partitions, but the new partition needs them). Resumable: progress is
  /// tracked per partition, so a replay interrupted by a network fault can
  /// be retried without re-applying rows.
  Status BackfillPartition(const SharedLog& log, const std::string& table,
                           size_t partition);

  uint64_t applied_offset() const { return applied_offset_; }

  /// Query service: executes a plan against local partition tables.
  /// Returns the result and accumulates scan statistics.
  StatusOr<ResultSet> ExecuteLocal(const PlanPtr& plan);

  /// One staged input of a fragment: rows shuffled or broadcast from an
  /// earlier stage, tagged with the node that produced them (the cluster
  /// charges producer->consumer delivery on the fabric before the fragment
  /// runs).
  struct FragmentInput {
    std::string name;    ///< table name the fragment plan scans
    size_t width = 0;    ///< column count
    const std::vector<std::pair<int, Row>>* rows = nullptr;
  };

  /// Query service: executes one distributed-plan fragment (DESIGN.md
  /// §14). Staged inputs are materialized into transient local tables,
  /// the plan runs through the same executor path as ExecuteLocal (so a
  /// governor attached to this node admits the fragment like any ad-hoc
  /// query), and the staging tables are dropped on every path — re-running
  /// a fragment after a retry starts from a clean slate.
  StatusOr<ResultSet> ExecuteFragment(const PlanPtr& plan,
                                      const std::vector<FragmentInput>& inputs);

  /// Attaches the workload governor fragment/local execution admits
  /// through (satellite of DESIGN.md §13.2; null detaches).
  void set_resource_governor(resource::ResourceGovernor* governor) {
    db_.set_resource_governor(governor);
  }

  /// Local rows of one hosted partition (all committed via the log).
  StatusOr<uint64_t> PartitionRowCount(const std::string& table, size_t partition) const;

  const Database& db() const { return db_; }

  uint64_t rows_scanned() const { return rows_scanned_; }
  uint64_t queries_served() const { return queries_served_; }
  uint64_t records_applied() const { return records_applied_; }
  /// Real nanoseconds this node spent executing queries (for makespan).
  uint64_t busy_nanos() const { return busy_nanos_; }

 private:
  /// Resumable backfill cursor of one freshly hosted partition: offsets
  /// [next, end) still owe history ([end, ...) arrives via ApplyUpTo,
  /// which covers every partition hosted before it runs).
  struct BackfillCursor {
    uint64_t next = 0;
    uint64_t end = 0;
  };

  int id_;
  NodeMode mode_;
  Database db_;
  std::set<std::pair<std::string, size_t>> hosted_;
  std::map<std::pair<std::string, size_t>, BackfillCursor> pending_backfill_;
  uint64_t applied_offset_ = 0;
  uint64_t rows_scanned_ = 0;
  uint64_t queries_served_ = 0;
  uint64_t records_applied_ = 0;
  uint64_t busy_nanos_ = 0;
};

}  // namespace poly

#endif  // POLY_SOE_NODE_H_
