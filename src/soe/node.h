#ifndef POLY_SOE_NODE_H_
#define POLY_SOE_NODE_H_

#include <set>
#include <string>

#include "query/executor.h"
#include "soe/log_record.h"
#include "soe/partition.h"
#include "soe/shared_log.h"
#include "storage/database.h"

namespace poly {

/// Consistency class of a database node (§IV-B): OLTP nodes incorporate
/// the log synchronously inside the update/read path ("real time
/// transactional update"); OLAP nodes apply it asynchronously, trading
/// freshness for cheap reads ("not necessarily synchronously to the update
/// request").
enum class NodeMode { kOltp, kOlap };

/// One SOE process (the v2lqp executable of Figure 3): a query service
/// plus a data service over locally hosted horizontal partitions.
class SoeNode {
 public:
  SoeNode(int id, NodeMode mode) : id_(id), mode_(mode) {}

  SoeNode(const SoeNode&) = delete;
  SoeNode& operator=(const SoeNode&) = delete;

  int id() const { return id_; }
  NodeMode mode() const { return mode_; }
  void set_mode(NodeMode mode) { mode_ = mode; }

  /// Data service: starts hosting a partition (creates the local table).
  Status HostPartition(const std::string& table, size_t partition, const Schema& schema);
  bool Hosts(const std::string& table, size_t partition) const;
  std::vector<std::pair<std::string, size_t>> HostedPartitions() const;

  /// Data service: applies log records [applied_offset, target) that touch
  /// hosted partitions. The log offset+1 becomes the commit timestamp.
  Status ApplyUpTo(const SharedLog& log, uint64_t target);

  /// Replays [0, applied_offset) for one partition just added to this
  /// node (used by Rebalance: the node is already past those offsets for
  /// its other partitions, but the new partition needs the history).
  Status BackfillPartition(const SharedLog& log, const std::string& table,
                           size_t partition);

  uint64_t applied_offset() const { return applied_offset_; }

  /// Query service: executes a plan against local partition tables.
  /// Returns the result and accumulates scan statistics.
  StatusOr<ResultSet> ExecuteLocal(const PlanPtr& plan);

  /// Local rows of one hosted partition (all committed via the log).
  StatusOr<uint64_t> PartitionRowCount(const std::string& table, size_t partition) const;

  const Database& db() const { return db_; }

  uint64_t rows_scanned() const { return rows_scanned_; }
  uint64_t queries_served() const { return queries_served_; }
  uint64_t records_applied() const { return records_applied_; }
  /// Real nanoseconds this node spent executing queries (for makespan).
  uint64_t busy_nanos() const { return busy_nanos_; }

 private:
  int id_;
  NodeMode mode_;
  Database db_;
  std::set<std::pair<std::string, size_t>> hosted_;
  uint64_t applied_offset_ = 0;
  uint64_t rows_scanned_ = 0;
  uint64_t queries_served_ = 0;
  uint64_t records_applied_ = 0;
  uint64_t busy_nanos_ = 0;
};

}  // namespace poly

#endif  // POLY_SOE_NODE_H_
