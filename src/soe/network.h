#ifndef POLY_SOE_NETWORK_H_
#define POLY_SOE_NETWORK_H_

#include <atomic>
#include <cstdint>

namespace poly {

/// Simulated cluster interconnect. Nodes are in-process (the substitution
/// for a physical cluster), so the network does pure cost accounting: every
/// message charges a latency plus bytes/bandwidth term to a virtual clock.
/// Experiments report this modeled time alongside real wall time.
class SimulatedNetwork {
 public:
  struct Options {
    double latency_nanos = 50000;          ///< 50 µs per message (datacenter RTT/2)
    double bandwidth_bytes_per_sec = 1e9;  ///< 1 GB/s links
  };

  SimulatedNetwork() : SimulatedNetwork(Options()) {}
  explicit SimulatedNetwork(Options options) : options_(options) {}

  /// Charges one message of `bytes` to the virtual clock.
  void Send(uint64_t bytes) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  uint64_t messages() const { return messages_.load(std::memory_order_relaxed); }
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

  /// Modeled transfer time of everything sent so far, in nanoseconds.
  double simulated_nanos() const {
    return static_cast<double>(messages()) * options_.latency_nanos +
           static_cast<double>(bytes()) / options_.bandwidth_bytes_per_sec * 1e9;
  }

  void Reset() {
    messages_.store(0);
    bytes_.store(0);
  }

 private:
  Options options_;
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> bytes_{0};
};

}  // namespace poly

#endif  // POLY_SOE_NETWORK_H_
