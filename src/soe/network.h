#ifndef POLY_SOE_NETWORK_H_
#define POLY_SOE_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <utility>

#include "common/metrics.h"
#include "common/random.h"
#include "common/status.h"

namespace poly {

/// Well-known endpoint ids on the simulated interconnect. Cluster nodes use
/// their non-negative node id; the coordinator/transaction-broker control
/// plane and the shared-log units get reserved negative ids so partitions
/// can isolate any pair of talkers.
inline constexpr int kCoordinatorEndpoint = -1;
/// Endpoint id of shared-log unit `unit` (unit >= 0).
inline constexpr int LogUnitEndpoint(int unit) { return -2 - unit; }

/// Simulated cluster interconnect. Nodes are in-process (the substitution
/// for a physical cluster), so the network does cost accounting — every
/// message charges a latency plus bytes/bandwidth term to a virtual clock —
/// and, when fault injection is enabled, acts as a deterministic chaos
/// fabric: per-message drop/duplicate/delay decisions come from a seeded
/// `poly::Random`, and endpoint pairs can be partitioned symmetrically or
/// asymmetrically. Every run is reproducible from `Options::fault_seed`.
class SimulatedNetwork {
 public:
  struct Options {
    double latency_nanos = 50000;          ///< 50 µs per message (datacenter RTT/2)
    double bandwidth_bytes_per_sec = 1e9;  ///< 1 GB/s links

    // ---- fault injection (all off by default) ----
    double drop_probability = 0.0;       ///< message lost in flight
    double duplicate_probability = 0.0;  ///< message delivered (and charged) twice
    double delay_probability = 0.0;      ///< message charged an extra queueing delay
    double max_delay_nanos = 500000.0;   ///< delay drawn uniform in [0, max]
    uint64_t fault_seed = 42;            ///< seeds the drop/dup/delay stream
  };

  SimulatedNetwork() : SimulatedNetwork(Options()) {}
  explicit SimulatedNetwork(Options options)
      : options_(options), rng_(options.fault_seed) {}

  // ---- messaging ----

  /// Sends one message of `bytes` from endpoint `from` to endpoint `to`.
  /// Returns Unavailable if the pair is partitioned, an endpoint is down,
  /// or the seeded fault stream drops the message. Dropped messages are
  /// still charged to the virtual clock (the packet went out).
  Status Send(int from, int to, uint64_t bytes);

  /// Legacy loopback accounting (coordinator-local work): never faulted.
  void Send(uint64_t bytes) { Account(bytes, 0); }

  // ---- partitions and endpoint liveness ----

  /// Blocks both directions between `a` and `b`.
  void Partition(int a, int b);
  /// Blocks only `from` -> `to` (asymmetric partition).
  void PartitionOneWay(int from, int to);
  /// Unblocks both directions between `a` and `b`.
  void Heal(int a, int b);
  /// Removes every partition edge (does not revive down endpoints).
  void HealAll();
  /// Marks an endpoint dead (all its traffic fails) or alive again.
  void SetEndpointDown(int endpoint, bool down);
  bool CanReach(int from, int to) const;

  // ---- runtime-mutable options (fault-schedule phases) ----

  Options options() const {
    std::lock_guard<std::mutex> lock(mu_);
    return options_;
  }
  /// Swaps the option block at runtime; the fault RNG stream is preserved
  /// (re-seeding would break replay determinism mid-run).
  void set_options(const Options& options) {
    std::lock_guard<std::mutex> lock(mu_);
    options_ = options;
  }

  // ---- metrics export ----

  /// Mirrors the fabric counters into `registry` under `soe.net.*`
  /// (messages, bytes, dropped, duplicated, delayed, partitions_installed,
  /// plus a `send_nanos` histogram of per-message modeled cost). Metric
  /// pointers are cached here, so the per-message cost is a few relaxed
  /// atomic adds. Pass nullptr to detach.
  void set_metrics(metrics::Registry* registry);

  // ---- counters / clocks ----

  uint64_t messages() const { return messages_.load(std::memory_order_relaxed); }
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t duplicated() const { return duplicated_.load(std::memory_order_relaxed); }
  uint64_t delayed() const { return delayed_.load(std::memory_order_relaxed); }

  /// Modeled transfer time of everything sent so far, in nanoseconds.
  double simulated_nanos() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<double>(messages()) * options_.latency_nanos +
           static_cast<double>(bytes()) / options_.bandwidth_bytes_per_sec * 1e9;
  }

  /// Virtual clock: transfer time plus injected delays plus explicitly
  /// advanced waits (retry backoff). Drives `FaultSchedule` firing.
  uint64_t virtual_nanos() const {
    return virtual_nanos_.load(std::memory_order_relaxed);
  }
  /// Advances the virtual clock without traffic (a caller sleeping out a
  /// retry backoff).
  void AdvanceVirtualTime(uint64_t nanos) {
    virtual_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

  void Reset() {
    messages_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
    duplicated_.store(0, std::memory_order_relaxed);
    delayed_.store(0, std::memory_order_relaxed);
    virtual_nanos_.store(0, std::memory_order_relaxed);
  }

 private:
  /// Charges one message + optional extra delay to the counters and clock.
  void Account(uint64_t bytes, uint64_t extra_delay_nanos);
  bool BlockedLocked(int from, int to) const;

  /// Cached registry metric pointers (all null when no registry attached).
  struct FabricMetrics {
    metrics::Counter* messages = nullptr;
    metrics::Counter* bytes = nullptr;
    metrics::Counter* dropped = nullptr;
    metrics::Counter* duplicated = nullptr;
    metrics::Counter* delayed = nullptr;
    metrics::Counter* partitions_installed = nullptr;
    metrics::Histogram* send_nanos = nullptr;
  };

  mutable std::mutex mu_;  ///< guards options_, rng_, blocked_, down_
  Options options_;
  Random rng_;
  FabricMetrics metrics_;
  std::set<std::pair<int, int>> blocked_;  ///< directed (from, to) edges
  std::set<int> down_;
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> duplicated_{0};
  std::atomic<uint64_t> delayed_{0};
  std::atomic<uint64_t> virtual_nanos_{0};
};

}  // namespace poly

#endif  // POLY_SOE_NETWORK_H_
