#include "soe/services.h"

namespace poly {

Status CatalogService::RegisterTable(const std::string& name, TableInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name)) return Status::AlreadyExists("table '" + name + "' in catalog");
  tables_.emplace(name, std::move(info));
  return Status::OK();
}

StatusOr<const CatalogService::TableInfo*> CatalogService::Lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no catalog entry '" + name + "'");
  return &it->second;
}

StatusOr<CatalogService::TableInfo*> CatalogService::MutableLookup(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no catalog entry '" + name + "'");
  return &it->second;
}

std::vector<std::string> CatalogService::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

void DiscoveryService::RegisterNode(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_[node] = true;
}

Status DiscoveryService::MarkDown(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return Status::NotFound("unknown node " + std::to_string(node));
  it->second = false;
  return Status::OK();
}

Status DiscoveryService::MarkUp(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return Status::NotFound("unknown node " + std::to_string(node));
  it->second = true;
  return Status::OK();
}

bool DiscoveryService::IsAlive(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second;
}

std::vector<int> DiscoveryService::LiveNodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  for (const auto& [node, alive] : nodes_) {
    if (alive) out.push_back(node);
  }
  return out;
}

std::vector<int> DiscoveryService::AllNodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  for (const auto& [node, _] : nodes_) out.push_back(node);
  return out;
}

void DiscoveryService::AddCredential(const std::string& principal,
                                     const std::string& secret) {
  std::lock_guard<std::mutex> lock(mu_);
  credentials_[principal] = secret;
}

bool DiscoveryService::Authorize(const std::string& principal,
                                 const std::string& secret) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = credentials_.find(principal);
  return it != credentials_.end() && it->second == secret;
}

void ClusterStatisticsService::RecordQuery(int node, uint64_t rows_scanned,
                                           uint64_t nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeStats& s = stats_[node];
  ++s.queries;
  s.rows_scanned += rows_scanned;
  s.busy_nanos += nanos;
}

void ClusterStatisticsService::RecordApply(int node, uint64_t records) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_[node].records_applied += records;
}

ClusterStatisticsService::NodeStats ClusterStatisticsService::Stats(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(node);
  return it == stats_.end() ? NodeStats{} : it->second;
}

int ClusterStatisticsService::Hotspot() const {
  std::lock_guard<std::mutex> lock(mu_);
  int hot = -1;
  uint64_t best = 0;
  for (const auto& [node, s] : stats_) {
    if (s.busy_nanos >= best) {
      best = s.busy_nanos;
      hot = node;
    }
  }
  return hot;
}

}  // namespace poly
