#include "soe/services.h"

namespace poly {

Status CatalogService::RegisterTable(const std::string& name, TableInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name)) return Status::AlreadyExists("table '" + name + "' in catalog");
  tables_.emplace(name, std::move(info));
  return Status::OK();
}

StatusOr<const CatalogService::TableInfo*> CatalogService::Lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no catalog entry '" + name + "'");
  return &it->second;
}

StatusOr<CatalogService::TableInfo*> CatalogService::MutableLookup(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no catalog entry '" + name + "'");
  return &it->second;
}

std::vector<std::string> CatalogService::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

void DiscoveryService::RegisterNode(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_[node] = true;
}

Status DiscoveryService::MarkDown(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return Status::NotFound("unknown node " + std::to_string(node));
  it->second = false;
  return Status::OK();
}

Status DiscoveryService::MarkUp(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return Status::NotFound("unknown node " + std::to_string(node));
  it->second = true;
  return Status::OK();
}

bool DiscoveryService::IsAlive(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second;
}

std::vector<int> DiscoveryService::LiveNodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  for (const auto& [node, alive] : nodes_) {
    if (alive) out.push_back(node);
  }
  return out;
}

std::vector<int> DiscoveryService::AllNodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  for (const auto& [node, _] : nodes_) out.push_back(node);
  return out;
}

void DiscoveryService::AddCredential(const std::string& principal,
                                     const std::string& secret) {
  std::lock_guard<std::mutex> lock(mu_);
  credentials_[principal] = secret;
}

bool DiscoveryService::Authorize(const std::string& principal,
                                 const std::string& secret) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = credentials_.find(principal);
  return it != credentials_.end() && it->second == secret;
}

ClusterStatisticsService::ClusterStatisticsService()
    : owned_registry_(std::make_unique<metrics::Registry>()),
      registry_(owned_registry_.get()),
      query_nanos_(registry_->histogram("soe.stats.query_nanos")) {}

ClusterStatisticsService::ClusterStatisticsService(metrics::Registry* registry)
    : registry_(registry),
      query_nanos_(registry_->histogram("soe.stats.query_nanos")) {}

const ClusterStatisticsService::NodeCounters& ClusterStatisticsService::CountersFor(
    int node) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeCounters& c = nodes_[node];
  if (c.queries == nullptr) {
    const std::string prefix = "soe.node." + std::to_string(node);
    c.queries = registry_->counter(metrics::JoinName(prefix, "queries"));
    c.rows_scanned = registry_->counter(metrics::JoinName(prefix, "rows_scanned"));
    c.busy_nanos = registry_->counter(metrics::JoinName(prefix, "busy_nanos"));
    c.records_applied =
        registry_->counter(metrics::JoinName(prefix, "records_applied"));
  }
  return c;
}

void ClusterStatisticsService::RecordQuery(int node, uint64_t rows_scanned,
                                           uint64_t nanos) {
  const NodeCounters& c = CountersFor(node);
  c.queries->Add(1);
  c.rows_scanned->Add(rows_scanned);
  c.busy_nanos->Add(nanos);
  query_nanos_->Observe(nanos);
}

void ClusterStatisticsService::RecordApply(int node, uint64_t records) {
  CountersFor(node).records_applied->Add(records);
}

ClusterStatisticsService::NodeStats ClusterStatisticsService::Stats(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return NodeStats{};
  return NodeStats{it->second.queries->Value(), it->second.rows_scanned->Value(),
                   it->second.busy_nanos->Value(),
                   it->second.records_applied->Value()};
}

int ClusterStatisticsService::Hotspot() const {
  std::lock_guard<std::mutex> lock(mu_);
  int hot = -1;
  uint64_t best = 0;
  for (const auto& [node, c] : nodes_) {
    uint64_t busy = c.busy_nanos->Value();
    if (busy >= best) {
      best = busy;
      hot = node;
    }
  }
  return hot;
}

std::vector<int> ClusterStatisticsService::Nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  out.reserve(nodes_.size());
  for (const auto& [node, _] : nodes_) out.push_back(node);
  return out;
}

std::string ClusterStatisticsService::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [node, c] : nodes_) {
    out += "node " + std::to_string(node) +
           ": queries=" + std::to_string(c.queries->Value()) +
           " rows_scanned=" + std::to_string(c.rows_scanned->Value()) +
           " busy_nanos=" + std::to_string(c.busy_nanos->Value()) +
           " records_applied=" + std::to_string(c.records_applied->Value()) + "\n";
  }
  return out;
}

}  // namespace poly
