#ifndef POLY_SOE_DISTRIBUTED_PLANNER_H_
#define POLY_SOE_DISTRIBUTED_PLANNER_H_

#include <string>
#include <vector>

#include "query/plan.h"
#include "soe/services.h"

namespace poly {

/// A staged (exchanged) input one fragment scans: the output of an earlier
/// stage, materialized into a per-task staging table on the serving node.
struct StagedInput {
  std::string name;        ///< table name the fragment plan scans
  size_t width = 0;        ///< column count of the staged rows
  int producer_stage = -1; ///< index into DistributedPlan::stages
};

/// One stage of a distributed plan: a set of fragment tasks sharing one
/// plan shape, sited either per partition of a catalog table (replica
/// failover applies) or on `num_tasks` freely assignable nodes, whose
/// common output flows through the exchange at the fragment's root.
struct FragmentStage {
  // -- placement --
  bool by_partition = false;
  std::string table;               ///< by_partition: the catalog table
  std::vector<size_t> partitions;  ///< by_partition: pruned partition ids
  int num_tasks = 0;               ///< !by_partition: consumer task count

  // -- the fragment --
  /// Plan every task executes. The root is a kExchange describing the
  /// stage's output; leaf scans name either `table` (patched to the task's
  /// partition table at dispatch) or a staged input.
  PlanPtr plan;
  std::vector<StagedInput> inputs;

  // -- output exchange (mirrors the plan root) --
  ExchangeMode mode = ExchangeMode::kGather;
  std::vector<size_t> keys;     ///< repartition hash columns
  std::string output_name;      ///< staging table name (non-gather stages)
  size_t output_width = 0;
  std::string label;            ///< short human label for spans/annotation
};

/// A lowered distributed plan: fragment stages in execution (topological)
/// order — the last stage gathers to the coordinator — plus an optional
/// coordinator residual over the gathered rows (projection, HAVING, sort,
/// limit), whose leaf scans `residual_input`.
struct DistributedPlan {
  std::vector<FragmentStage> stages;
  PlanPtr residual;                ///< null = gathered rows are final
  std::string residual_input;
  std::vector<std::string> gather_columns;  ///< names of the gathered rows

  /// "scan", "two-phase-aggregate", "broadcast-join", "shuffle-join",
  /// "broadcast-join+aggregate", "shuffle-join+aggregate", or "gather"
  /// (the explicit last-resort: ship every table to the coordinator).
  std::string strategy;
  bool use_gather_fallback = false;

  /// Annotated plan for EXPLAIN-style introspection: the strategy, one
  /// line per stage with placement and exchange mode, each fragment plan,
  /// and the coordinator residual.
  std::string ToString() const;
};

/// Lowers an optimized single-node plan into a DAG of per-node fragments
/// (DESIGN.md §14): partition-pruned scans stay node-local, equi-joins
/// become broadcast joins when one side is small by catalog stats (else
/// repartition-hash joins shuffled by join key), and GROUP BY of any arity
/// becomes partial-per-node -> repartition-by-key -> final. Shapes it
/// cannot place come back with `use_gather_fallback` set — the bridge's
/// gather-and-execute is the explicit last resort, not a silent default.
class DistributedPlanner {
 public:
  struct Options {
    /// An equi-join side at or below this many catalog-estimated rows is
    /// broadcast instead of shuffled (DESIGN.md §14.3).
    uint64_t broadcast_threshold_rows = 2048;
  };

  DistributedPlanner(const CatalogService* catalog,
                     const DiscoveryService* discovery, Options options)
      : catalog_(catalog), discovery_(discovery), options_(options) {}
  DistributedPlanner(const CatalogService* catalog,
                     const DiscoveryService* discovery)
      : DistributedPlanner(catalog, discovery, Options()) {}

  StatusOr<DistributedPlan> Plan(const PlanPtr& optimized);

 private:
  /// Producer stages + join body shared by the plain-join and
  /// join-then-aggregate lowerings.
  struct JoinLowering {
    PlanPtr body;  ///< HashJoin over local/staged scans
    bool consumer_by_partition = false;  ///< broadcast: big side's partitions
    std::string consumer_table;
    std::vector<size_t> consumer_partitions;
    int consumer_tasks = 0;
    std::vector<StagedInput> consumer_inputs;
    std::string strategy;
    size_t width = 0;
    std::vector<std::string> columns;
  };

  /// Classifies and lowers the core (post-residual) plan; returns false if
  /// the shape cannot be placed (caller falls back to gather).
  StatusOr<bool> LowerCore(const PlanNode& core, int live, DistributedPlan* out);
  StatusOr<bool> LowerJoinInputs(const PlanNode& join, int live,
                                 DistributedPlan* out, JoinLowering* lowering);
  /// Appends the repartition-partials -> final-aggregate stage pair for an
  /// aggregate whose input is produced by the stage described by `body`.
  void LowerTwoPhaseAggregate(const PlanNode& agg, PlanPtr body,
                              FragmentStage partial_site, int live,
                              const std::vector<std::string>& input_columns,
                              DistributedPlan* out);

  const CatalogService* catalog_;
  const DiscoveryService* discovery_;
  Options options_;
};

}  // namespace poly

#endif  // POLY_SOE_DISTRIBUTED_PLANNER_H_
