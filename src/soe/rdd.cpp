#include "soe/rdd.h"

#include <unordered_map>

namespace poly {

SoeRdd SoeRdd::FromTable(SoeCluster* cluster, std::string table) {
  SoeRdd rdd;
  rdd.cluster_ = cluster;
  rdd.table_ = std::move(table);
  return rdd;
}

SoeRdd SoeRdd::Where(ExprPtr predicate) const {
  SoeRdd out = *this;
  if (!out.stages_.empty()) {
    // A framework stage already intervened; the engine cannot see through
    // it, so the predicate joins the framework stages instead.
    Stage stage;
    ExprPtr p = std::move(predicate);
    stage.filter = [p](const Row& row) { return p->EvalBool(row); };
    out.stages_.push_back(std::move(stage));
    return out;
  }
  out.pushed_predicate_ = out.pushed_predicate_
                              ? Expr::And(out.pushed_predicate_, std::move(predicate))
                              : std::move(predicate);
  return out;
}

SoeRdd SoeRdd::Filter(RowPredicate predicate) const {
  SoeRdd out = *this;
  Stage stage;
  stage.filter = std::move(predicate);
  out.stages_.push_back(std::move(stage));
  return out;
}

SoeRdd SoeRdd::Map(RowMapper mapper) const {
  SoeRdd out = *this;
  Stage stage;
  stage.mapper = std::move(mapper);
  out.stages_.push_back(std::move(stage));
  return out;
}

namespace {

/// Spark-style lineage recompute: when a partition becomes unanswerable
/// (replica loss), rebuild it from the shared log — the lineage — via
/// Rebalance, then re-run the action once. Any other error passes through.
template <typename Action>
auto WithLineageRecompute(SoeCluster* cluster, const Action& action)
    -> decltype(action()) {
  auto result = action();
  if (result.ok() || !result.status().IsUnavailable()) return result;
  Status rebuilt = cluster->Rebalance();
  if (!rebuilt.ok()) return result;  // original failure is the better signal
  return action();
}

}  // namespace

StatusOr<std::vector<Row>> SoeRdd::Collect() const {
  POLY_ASSIGN_OR_RETURN(ResultSet rs, WithLineageRecompute(cluster_, [&] {
                          return cluster_->DistributedScan(table_, pushed_predicate_);
                        }));
  std::vector<Row> rows = std::move(rs.rows);
  for (const Stage& stage : stages_) {
    std::vector<Row> next;
    next.reserve(rows.size());
    for (Row& row : rows) {
      if (stage.filter) {
        if (stage.filter(row)) next.push_back(std::move(row));
      } else {
        next.push_back(stage.mapper(row));
      }
    }
    rows = std::move(next);
  }
  return rows;
}

StatusOr<uint64_t> SoeRdd::Count() const {
  if (FullyPushable()) {
    AggSpec cnt{AggFunc::kCount, nullptr, "cnt"};
    POLY_ASSIGN_OR_RETURN(ResultSet rs, WithLineageRecompute(cluster_, [&] {
                            return cluster_->DistributedAggregate(
                                table_, pushed_predicate_, "", {cnt});
                          }));
    return static_cast<uint64_t>(rs.rows[0][0].AsInt());
  }
  POLY_ASSIGN_OR_RETURN(std::vector<Row> rows, Collect());
  return rows.size();
}

StatusOr<ResultSet> SoeRdd::AggregateByKey(const std::string& group_column,
                                           std::vector<AggSpec> aggregates) const {
  if (FullyPushable()) {
    return WithLineageRecompute(cluster_, [&] {
      return cluster_->DistributedAggregate(table_, pushed_predicate_, group_column,
                                            aggregates);
    });
  }
  // Framework-side fallback: collect, then group/aggregate here. Only SUM,
  // COUNT, MIN, MAX, AVG over numeric inputs — same as the engine.
  POLY_ASSIGN_OR_RETURN(const CatalogService::TableInfo* info,
                        cluster_->catalog().Lookup(table_));
  POLY_ASSIGN_OR_RETURN(size_t group_col, info->schema.IndexOf(group_column));
  POLY_ASSIGN_OR_RETURN(std::vector<Row> rows, Collect());

  struct Acc {
    uint64_t count = 0;
    double sum = 0;
    bool has = false;
    Value min, max;
  };
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  std::unordered_map<Value, std::vector<Acc>, ValueHash> groups;
  std::vector<Value> order;
  for (const Row& row : rows) {
    if (group_col >= row.size()) {
      return Status::InvalidArgument("map stage dropped the group column");
    }
    const Value& key = row[group_col];
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key, std::vector<Acc>(aggregates.size())).first;
      order.push_back(key);
    }
    for (size_t a = 0; a < aggregates.size(); ++a) {
      Acc& acc = it->second[a];
      Value v = aggregates[a].input ? aggregates[a].input->Eval(row) : Value::Int(1);
      if (v.is_null()) continue;
      ++acc.count;
      acc.sum += v.NumericValue();
      if (!acc.has || v < acc.min) acc.min = v;
      if (!acc.has || acc.max < v) acc.max = v;
      acc.has = true;
    }
  }
  ResultSet out;
  out.column_names.push_back(group_column);
  for (const auto& agg : aggregates) out.column_names.push_back(agg.output_name);
  for (const Value& key : order) {
    Row row = {key};
    const auto& accs = groups[key];
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const Acc& acc = accs[a];
      switch (aggregates[a].func) {
        case AggFunc::kCount:
          row.push_back(Value::Int(static_cast<int64_t>(acc.count)));
          break;
        case AggFunc::kSum:
          row.push_back(acc.has ? Value::Dbl(acc.sum) : Value::Null());
          break;
        case AggFunc::kMin:
          row.push_back(acc.has ? acc.min : Value::Null());
          break;
        case AggFunc::kMax:
          row.push_back(acc.has ? acc.max : Value::Null());
          break;
        case AggFunc::kAvg:
          row.push_back(acc.count ? Value::Dbl(acc.sum / acc.count) : Value::Null());
          break;
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace poly
