#include "soe/shared_log.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>

namespace poly {

SharedLog::SharedLog(Options options, SimulatedNetwork* net)
    : options_(options), net_(net) {
  if (options_.num_log_units < 1) options_.num_log_units = 1;
  if (options_.replication < 1) options_.replication = 1;
  if (options_.replication > options_.num_log_units) {
    options_.replication = options_.num_log_units;
  }
  units_.resize(options_.num_log_units);
  unit_alive_.assign(options_.num_log_units, true);
  if (!options_.durable_dir.empty()) LoadDurable();
}

SharedLog::~SharedLog() {
  for (std::FILE* f : unit_files_) {
    if (f != nullptr) std::fclose(f);
  }
}

void SharedLog::LoadDurable() {
  ::mkdir(options_.durable_dir.c_str(), 0755);  // EEXIST is fine
  unit_files_.assign(units_.size(), nullptr);
  uint64_t max_tail = 0;
  for (size_t unit = 0; unit < units_.size(); ++unit) {
    std::string path =
        options_.durable_dir + "/unit" + std::to_string(unit) + ".log";
    if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
      // Frame: [u64 offset][u64 len][len payload bytes]. A short read means
      // the process died mid-frame; everything before it is intact.
      uint64_t valid_bytes = 0;  // length of the complete-frame prefix
      for (;;) {
        uint64_t header[2];
        if (std::fread(header, sizeof(uint64_t), 2, f) != 2) break;
        std::string payload(header[1], '\0');
        if (header[1] > 0 &&
            std::fread(payload.data(), 1, payload.size(), f) != payload.size()) {
          break;  // truncated tail frame: discard
        }
        units_[unit][header[0]] = std::move(payload);
        max_tail = std::max(max_tail, header[0] + 1);
        valid_bytes += 2 * sizeof(uint64_t) + header[1];
      }
      std::fclose(f);
      // Chop the torn frame off before reopening for append. Appending
      // after the garbage bytes would make every later frame unreachable
      // to the next recovery's reader — fsynced records silently lost on
      // the second crash.
      ::truncate(path.c_str(), static_cast<off_t>(valid_bytes));
    }
    unit_files_[unit] = std::fopen(path.c_str(), "ab");
  }
  sequencer_.store(max_tail, std::memory_order_release);
}

void SharedLog::PersistRecord(int unit, uint64_t offset, const std::string& record) {
  if (unit_files_.empty()) return;
  std::FILE* f = unit_files_[unit];
  if (f == nullptr) return;
  uint64_t header[2] = {offset, record.size()};
  std::fwrite(header, sizeof(uint64_t), 2, f);
  std::fwrite(record.data(), 1, record.size(), f);
  std::fflush(f);
  ::fsync(fileno(f));
}

void SharedLog::set_metrics(metrics::Registry* registry) {
  if (registry == nullptr) {
    metrics_ = LogMetrics{};
    return;
  }
  metrics_.appends = registry->counter("soe.log.appends");
  metrics_.append_failures = registry->counter("soe.log.append_failures");
  metrics_.replica_writes = registry->counter("soe.log.replica_writes");
  metrics_.reads = registry->counter("soe.log.reads");
  metrics_.read_failovers = registry->counter("soe.log.read_failovers");
  metrics_.rereplicated_records = registry->counter("soe.log.rereplicated_records");
}

std::vector<int> SharedLog::ReplicasOf(uint64_t offset) const {
  std::vector<int> replicas;
  for (int i = 0; i < options_.replication; ++i) {
    replicas.push_back(static_cast<int>((offset + i) % units_.size()));
  }
  return replicas;
}

StatusOr<uint64_t> SharedLog::Append(std::string record, int writer) {
  std::lock_guard<std::mutex> lock(mu_);
  // The offset is claimed only once at least one replica holds the record:
  // a fully failed append consumes nothing, keeps the log dense, and makes
  // the caller's retry of the same record safe (no hole to fill).
  uint64_t offset = sequencer_.load(std::memory_order_relaxed);
  int written = 0;
  for (int unit : ReplicasOf(offset)) {
    if (!unit_alive_[unit]) continue;
    if (net_) {
      Status sent = net_->Send(writer, LogUnitEndpoint(unit), record.size() + 16);
      if (!sent.ok()) continue;  // this replica missed the write
    }
    // Keyed by offset: a duplicated delivery overwrites with the same
    // payload — chunk writes are idempotent by construction.
    units_[unit][offset] = record;
    PersistRecord(unit, offset, record);
    ++written;
  }
  if (written == 0) {
    if (metrics_.append_failures != nullptr) metrics_.append_failures->Add(1);
    return Status::Unavailable("no log replica reachable for offset " +
                               std::to_string(offset));
  }
  if (metrics_.appends != nullptr) {
    metrics_.appends->Add(1);
    metrics_.replica_writes->Add(written);
  }
  sequencer_.store(offset + 1, std::memory_order_release);
  return offset;
}

StatusOr<std::string> SharedLog::Read(uint64_t offset, int reader) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (offset >= sequencer_.load(std::memory_order_acquire)) {
    return Status::OutOfRange("offset beyond log tail");
  }
  bool exists = false;
  Status last_send = Status::OK();
  auto try_unit = [&](size_t unit) -> const std::string* {
    if (!unit_alive_[unit]) return nullptr;
    auto it = units_[unit].find(offset);
    if (it == units_[unit].end()) return nullptr;
    exists = true;
    if (net_) {
      Status sent = net_->Send(LogUnitEndpoint(static_cast<int>(unit)), reader,
                               it->second.size() + 16);
      if (!sent.ok()) {
        last_send = sent;
        if (metrics_.read_failovers != nullptr) metrics_.read_failovers->Add(1);
        return nullptr;  // fail over to the next replica
      }
    }
    if (metrics_.reads != nullptr) metrics_.reads->Add(1);
    return &it->second;
  };
  for (int unit : ReplicasOf(offset)) {
    if (const std::string* rec = try_unit(unit)) return *rec;
  }
  // Re-replication may have placed copies outside the deterministic chain;
  // fall back to asking every live unit before declaring the offset lost.
  for (size_t unit = 0; unit < units_.size(); ++unit) {
    if (const std::string* rec = try_unit(unit)) return *rec;
  }
  if (exists) {
    return Status::Unavailable("log offset " + std::to_string(offset) +
                               " unreachable: " + last_send.message());
  }
  return Status::Unavailable("log offset " + std::to_string(offset) + " unavailable");
}

StatusOr<std::vector<std::string>> SharedLog::ReadRange(uint64_t from, uint64_t to,
                                                        int reader) const {
  std::vector<std::string> out;
  out.reserve(to > from ? to - from : 0);
  for (uint64_t off = from; off < to; ++off) {
    POLY_ASSIGN_OR_RETURN(std::string rec, Read(off, reader));
    out.push_back(std::move(rec));
  }
  return out;
}

uint64_t SharedLog::Tail() const { return sequencer_.load(std::memory_order_acquire); }

Status SharedLog::KillUnit(int unit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (unit < 0 || unit >= static_cast<int>(units_.size())) {
    return Status::InvalidArgument("no log unit " + std::to_string(unit));
  }
  unit_alive_[unit] = false;
  return Status::OK();
}

Status SharedLog::ReviveUnit(int unit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (unit < 0 || unit >= static_cast<int>(units_.size())) {
    return Status::InvalidArgument("no log unit " + std::to_string(unit));
  }
  unit_alive_[unit] = true;
  return Status::OK();
}

Status SharedLog::ReReplicate() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t tail = sequencer_.load(std::memory_order_acquire);
  for (uint64_t off = 0; off < tail; ++off) {
    // Find one live copy anywhere (previous repairs may have moved it off
    // the deterministic chain).
    const std::string* copy = nullptr;
    int source = -1;
    for (size_t unit = 0; unit < units_.size(); ++unit) {
      if (!unit_alive_[unit]) continue;
      auto it = units_[unit].find(off);
      if (it != units_[unit].end()) {
        copy = &it->second;
        source = static_cast<int>(unit);
        break;
      }
    }
    if (copy == nullptr) {
      return Status::Unavailable("log offset " + std::to_string(off) + " lost");
    }
    // Count live holders; top up onto other live units. A dropped copy
    // message just leaves the offset under-replicated for the next pass.
    int holders = 0;
    for (size_t u = 0; u < units_.size(); ++u) {
      if (unit_alive_[u] && units_[u].count(off)) ++holders;
    }
    for (size_t u = 0; u < units_.size() && holders < options_.replication; ++u) {
      if (!unit_alive_[u] || units_[u].count(off)) continue;
      if (net_) {
        Status sent = net_->Send(LogUnitEndpoint(source),
                                 LogUnitEndpoint(static_cast<int>(u)), copy->size() + 16);
        if (!sent.ok()) continue;
      }
      units_[u][off] = *copy;
      PersistRecord(static_cast<int>(u), off, *copy);
      ++holders;
      if (metrics_.rereplicated_records != nullptr) {
        metrics_.rereplicated_records->Add(1);
      }
    }
  }
  return Status::OK();
}

uint64_t SharedLog::records_stored(int unit) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (unit < 0 || unit >= static_cast<int>(units_.size())) return 0;
  return units_[unit].size();
}

}  // namespace poly
