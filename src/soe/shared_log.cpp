#include "soe/shared_log.h"

#include <algorithm>

namespace poly {

SharedLog::SharedLog(Options options, SimulatedNetwork* net)
    : options_(options), net_(net) {
  if (options_.num_log_units < 1) options_.num_log_units = 1;
  if (options_.replication < 1) options_.replication = 1;
  if (options_.replication > options_.num_log_units) {
    options_.replication = options_.num_log_units;
  }
  units_.resize(options_.num_log_units);
  unit_alive_.assign(options_.num_log_units, true);
}

std::vector<int> SharedLog::ReplicasOf(uint64_t offset) const {
  std::vector<int> replicas;
  for (int i = 0; i < options_.replication; ++i) {
    replicas.push_back(static_cast<int>((offset + i) % units_.size()));
  }
  return replicas;
}

StatusOr<uint64_t> SharedLog::Append(std::string record) {
  // Sequencer: one atomic fetch — the CORFU fast path.
  uint64_t offset = sequencer_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> replicas = ReplicasOf(offset);
  int written = 0;
  for (int unit : replicas) {
    if (!unit_alive_[unit]) continue;
    units_[unit][offset] = record;
    if (net_) net_->Send(record.size() + 16);
    ++written;
  }
  if (written == 0) {
    return Status::Unavailable("all replicas for log offset " + std::to_string(offset) +
                               " are down");
  }
  return offset;
}

StatusOr<std::string> SharedLog::Read(uint64_t offset) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (int unit : ReplicasOf(offset)) {
    if (!unit_alive_[unit]) continue;
    auto it = units_[unit].find(offset);
    if (it != units_[unit].end()) {
      if (net_) net_->Send(it->second.size() + 16);
      return it->second;
    }
  }
  // Re-replication may have placed copies outside the deterministic chain;
  // fall back to asking every live unit before declaring the offset lost.
  for (size_t unit = 0; unit < units_.size(); ++unit) {
    if (!unit_alive_[unit]) continue;
    auto it = units_[unit].find(offset);
    if (it != units_[unit].end()) {
      if (net_) net_->Send(it->second.size() + 16);
      return it->second;
    }
  }
  if (offset >= sequencer_.load(std::memory_order_acquire)) {
    return Status::OutOfRange("offset beyond log tail");
  }
  return Status::Unavailable("log offset " + std::to_string(offset) + " unavailable");
}

StatusOr<std::vector<std::string>> SharedLog::ReadRange(uint64_t from, uint64_t to) const {
  std::vector<std::string> out;
  out.reserve(to > from ? to - from : 0);
  for (uint64_t off = from; off < to; ++off) {
    POLY_ASSIGN_OR_RETURN(std::string rec, Read(off));
    out.push_back(std::move(rec));
  }
  return out;
}

uint64_t SharedLog::Tail() const { return sequencer_.load(std::memory_order_acquire); }

Status SharedLog::KillUnit(int unit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (unit < 0 || unit >= static_cast<int>(units_.size())) {
    return Status::InvalidArgument("no log unit " + std::to_string(unit));
  }
  unit_alive_[unit] = false;
  return Status::OK();
}

Status SharedLog::ReReplicate() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t tail = sequencer_.load(std::memory_order_acquire);
  for (uint64_t off = 0; off < tail; ++off) {
    // Find one live copy anywhere (previous repairs may have moved it off
    // the deterministic chain).
    const std::string* copy = nullptr;
    for (size_t unit = 0; unit < units_.size(); ++unit) {
      if (!unit_alive_[unit]) continue;
      auto it = units_[unit].find(off);
      if (it != units_[unit].end()) {
        copy = &it->second;
        break;
      }
    }
    if (copy == nullptr) {
      return Status::Unavailable("log offset " + std::to_string(off) + " lost");
    }
    // Count live holders; top up onto other live units.
    int holders = 0;
    for (size_t u = 0; u < units_.size(); ++u) {
      if (unit_alive_[u] && units_[u].count(off)) ++holders;
    }
    for (size_t u = 0; u < units_.size() && holders < options_.replication; ++u) {
      if (!unit_alive_[u] || units_[u].count(off)) continue;
      units_[u][off] = *copy;
      if (net_) net_->Send(copy->size() + 16);
      ++holders;
    }
  }
  return Status::OK();
}

uint64_t SharedLog::records_stored(int unit) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (unit < 0 || unit >= static_cast<int>(units_.size())) return 0;
  return units_[unit].size();
}

}  // namespace poly
