#ifndef POLY_SOE_SERVICES_H_
#define POLY_SOE_SERVICES_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "soe/partition.h"

namespace poly {

/// Catalog + data-discovery service (Figure 3, v2catalog): schemas,
/// partition specs, and the partition -> node placement map.
class CatalogService {
 public:
  struct TableInfo {
    Schema schema;
    PartitionSpec spec;
    int replication = 1;
    /// partition -> node ids, primary first.
    std::vector<std::vector<int>> placement;
  };

  Status RegisterTable(const std::string& name, TableInfo info);
  StatusOr<const TableInfo*> Lookup(const std::string& name) const;
  StatusOr<TableInfo*> MutableLookup(const std::string& name);
  std::vector<std::string> TableNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TableInfo> tables_;
};

/// Cluster discovery + authorization service (Figure 3, v2disc&auth):
/// which services/nodes exist and are alive, and who may talk to them.
class DiscoveryService {
 public:
  void RegisterNode(int node);
  Status MarkDown(int node);
  Status MarkUp(int node);
  bool IsAlive(int node) const;
  std::vector<int> LiveNodes() const;
  std::vector<int> AllNodes() const;

  /// Credential store: principal -> secret.
  void AddCredential(const std::string& principal, const std::string& secret);
  bool Authorize(const std::string& principal, const std::string& secret) const;

 private:
  mutable std::mutex mu_;
  std::map<int, bool> nodes_;
  std::map<std::string, std::string> credentials_;
};

/// Cluster statistics service (Figure 3, v2stats): per-node counters the
/// cluster manager uses "to identify hotspots or to monitor performance
/// goals".
class ClusterStatisticsService {
 public:
  void RecordQuery(int node, uint64_t rows_scanned, uint64_t nanos);
  void RecordApply(int node, uint64_t records);

  struct NodeStats {
    uint64_t queries = 0;
    uint64_t rows_scanned = 0;
    uint64_t busy_nanos = 0;
    uint64_t records_applied = 0;
  };
  NodeStats Stats(int node) const;
  /// Node with the most accumulated busy time (hotspot), or -1.
  int Hotspot() const;

 private:
  mutable std::mutex mu_;
  std::map<int, NodeStats> stats_;
};

}  // namespace poly

#endif  // POLY_SOE_SERVICES_H_
