#ifndef POLY_SOE_SERVICES_H_
#define POLY_SOE_SERVICES_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "soe/partition.h"

namespace poly {

/// Catalog + data-discovery service (Figure 3, v2catalog): schemas,
/// partition specs, and the partition -> node placement map.
class CatalogService {
 public:
  struct TableInfo {
    Schema schema;
    PartitionSpec spec;
    int replication = 1;
    /// partition -> node ids, primary first.
    std::vector<std::vector<int>> placement;
    /// Rows committed through the transaction broker — the catalog
    /// statistic the distributed planner's broadcast-vs-shuffle join rule
    /// consults (DESIGN.md §14.3). An estimate, not a count: deletes are
    /// not modeled and replays do not double-bump it.
    uint64_t approx_rows = 0;
  };

  Status RegisterTable(const std::string& name, TableInfo info);
  StatusOr<const TableInfo*> Lookup(const std::string& name) const;
  StatusOr<TableInfo*> MutableLookup(const std::string& name);
  std::vector<std::string> TableNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TableInfo> tables_;
};

/// Cluster discovery + authorization service (Figure 3, v2disc&auth):
/// which services/nodes exist and are alive, and who may talk to them.
class DiscoveryService {
 public:
  void RegisterNode(int node);
  Status MarkDown(int node);
  Status MarkUp(int node);
  bool IsAlive(int node) const;
  std::vector<int> LiveNodes() const;
  std::vector<int> AllNodes() const;

  /// Credential store: principal -> secret.
  void AddCredential(const std::string& principal, const std::string& secret);
  bool Authorize(const std::string& principal, const std::string& secret) const;

 private:
  mutable std::mutex mu_;
  std::map<int, bool> nodes_;
  std::map<std::string, std::string> credentials_;
};

/// Cluster statistics service (Figure 3, v2stats): per-node counters the
/// cluster manager uses "to identify hotspots or to monitor performance
/// goals".
///
/// Backed entirely by a `metrics::Registry` — each node's figures live as
/// `soe.node.<id>.{queries,rows_scanned,busy_nanos,records_applied}`
/// counters plus a cluster-wide `soe.stats.query_nanos` histogram, so
/// `Hotspot()`, `Stats()`, `Report()`, and the registry's text page all
/// derive from the same numbers (DESIGN.md §10). By default the service
/// owns a private registry; pass the cluster registry to fold v2stats into
/// the cluster-wide metric namespace.
class ClusterStatisticsService {
 public:
  /// Standalone service with its own private registry.
  ClusterStatisticsService();
  /// Records into `registry` (not owned; must outlive the service).
  explicit ClusterStatisticsService(metrics::Registry* registry);

  void RecordQuery(int node, uint64_t rows_scanned, uint64_t nanos);
  void RecordApply(int node, uint64_t records);

  struct NodeStats {
    uint64_t queries = 0;
    uint64_t rows_scanned = 0;
    uint64_t busy_nanos = 0;
    uint64_t records_applied = 0;
  };
  NodeStats Stats(int node) const;
  /// Node with the most accumulated busy time (hotspot), or -1. Ties go to
  /// the highest node id (map-order last-max-wins, kept from the original
  /// service).
  int Hotspot() const;

  /// Node ids that have recorded at least one event, ascending.
  std::vector<int> Nodes() const;
  /// Human-readable per-node table (one line per node) for operator
  /// consoles and the cluster tour example.
  std::string Report() const;

  /// Registry the counters live in (the private one unless injected).
  metrics::Registry* registry() const { return registry_; }

 private:
  /// Cached per-node counter pointers; created on first record for a node.
  struct NodeCounters {
    metrics::Counter* queries = nullptr;
    metrics::Counter* rows_scanned = nullptr;
    metrics::Counter* busy_nanos = nullptr;
    metrics::Counter* records_applied = nullptr;
  };
  const NodeCounters& CountersFor(int node);

  std::unique_ptr<metrics::Registry> owned_registry_;
  metrics::Registry* registry_;
  metrics::Histogram* query_nanos_;  ///< cluster-wide query latency
  mutable std::mutex mu_;            ///< guards nodes_
  std::map<int, NodeCounters> nodes_;
};

}  // namespace poly

#endif  // POLY_SOE_SERVICES_H_
