#ifndef POLY_SOE_CLUSTER_H_
#define POLY_SOE_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "soe/node.h"
#include "soe/services.h"
#include "soe/shared_log.h"

namespace poly {

/// Statistics of one distributed query.
struct DistributedQueryStats {
  size_t partitions = 0;
  size_t nodes_used = 0;
  uint64_t result_bytes_gathered = 0;
  uint64_t makespan_nanos = 0;  ///< max per-node local execution time
  uint64_t total_exec_nanos = 0;
};

/// The SAP HANA SOE as one object graph (Figure 3): query-processing nodes
/// (v2lqp), the distributed query coordinator (v2dqp), the transaction
/// broker over the CORFU-style shared log (v2transact), the catalog/data
/// discovery (v2catalog), discovery&auth (v2disc&auth), and the cluster
/// manager with its statistics service (v2clustermgr, v2stats). Nodes are
/// in-process objects; the network is cost-accounted (src/soe/network.h).
class SoeCluster {
 public:
  struct Options {
    int num_nodes = 4;
    int log_units = 3;
    int log_replication = 2;
    NodeMode default_mode = NodeMode::kOltp;
    SimulatedNetwork::Options net;
  };

  explicit SoeCluster(Options options);

  // ---- DDL (catalog + cluster manager) ----

  /// Creates a distributed table: registers schema+spec, places each
  /// partition on `replication` nodes (round-robin), creates local tables.
  Status CreateTable(const std::string& name, const Schema& schema,
                     const PartitionSpec& spec, int replication = 1);

  // ---- Writes (transaction broker, v2transact) ----

  /// Commits one transaction of inserts; returns its commit offset. OLTP
  /// nodes hosting touched partitions apply synchronously; OLAP nodes lag
  /// until Poll.
  StatusOr<uint64_t> CommitInserts(const std::string& table, const std::vector<Row>& rows);
  StatusOr<uint64_t> Insert(const std::string& table, const Row& row) {
    return CommitInserts(table, {row});
  }

  // ---- Reads (distributed query coordinator, v2dqp) ----

  /// Scatter/gather aggregate: predicate + aggregates (+ optional group-by
  /// column) evaluated per partition, partials merged at the coordinator.
  /// AVG is decomposed into SUM+COUNT for mergeability.
  StatusOr<ResultSet> DistributedAggregate(const std::string& table,
                                           const ExprPtr& predicate,
                                           const std::string& group_column,
                                           std::vector<AggSpec> aggregates);

  /// Scatter/gather row collection.
  StatusOr<ResultSet> DistributedScan(const std::string& table, const ExprPtr& predicate);

  const DistributedQueryStats& last_query_stats() const { return last_stats_; }

  // ---- Node lifecycle (cluster manager, v2clustermgr) ----

  Status SetNodeMode(int node, NodeMode mode);
  /// Simulates a node crash: discovery marks it down, queries fail over.
  Status KillNode(int node);
  Status RestartNode(int node);
  /// Rebuilds all partitions of dead nodes onto live ones by replaying the
  /// shared log (the prepackaged-partition redistribution of §IV-B).
  Status Rebalance();

  /// OLAP catch-up ("updates can be incorporated by regularly polling the
  /// log"). Returns records applied.
  StatusOr<uint64_t> PollNode(int node);
  /// Commit offset lag of a node against the log tail.
  uint64_t Staleness(int node) const;

  // ---- Introspection ----
  SoeNode* node(int id) { return nodes_[id].get(); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  SharedLog& log() { return log_; }
  SimulatedNetwork& network() { return net_; }
  CatalogService& catalog() { return catalog_; }
  DiscoveryService& discovery() { return discovery_; }
  ClusterStatisticsService& statistics() { return stats_; }

 private:
  /// First live node hosting a partition (primary preferred).
  StatusOr<int> RouteToNode(const CatalogService::TableInfo& info, size_t partition) const;
  /// Brings an OLTP node up to the log tail before it serves a read.
  Status SyncForRead(SoeNode* node);

  Options options_;
  SimulatedNetwork net_;
  SharedLog log_;
  CatalogService catalog_;
  DiscoveryService discovery_;
  ClusterStatisticsService stats_;
  std::vector<std::unique_ptr<SoeNode>> nodes_;
  int next_placement_ = 0;
  DistributedQueryStats last_stats_;
};

}  // namespace poly

#endif  // POLY_SOE_CLUSTER_H_
