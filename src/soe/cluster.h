#ifndef POLY_SOE_CLUSTER_H_
#define POLY_SOE_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "soe/distributed_planner.h"
#include "soe/fault_schedule.h"
#include "soe/node.h"
#include "soe/services.h"
#include "soe/shared_log.h"

namespace poly {

/// Statistics of one distributed query.
struct DistributedQueryStats {
  size_t partitions = 0;
  size_t nodes_used = 0;
  uint64_t result_bytes_gathered = 0;
  uint64_t makespan_nanos = 0;  ///< max per-node local execution time
  uint64_t total_exec_nanos = 0;
  uint64_t retries = 0;    ///< per-partition task attempts beyond the first
  uint64_t failovers = 0;  ///< tasks answered by a non-primary replica
  /// Node-to-node staged-input delivery bytes (shuffle/broadcast traffic;
  /// rows consumed on the node that produced them ride for free).
  uint64_t shuffle_bytes = 0;
  size_t fragments = 0;  ///< fragment tasks run, all stages (RunFragments)
};

/// Bounded-retry policy for cluster operations over the fault fabric:
/// exponential backoff with jitter, capped per attempt and by a virtual-time
/// operation deadline. Backoff waits advance the network's virtual clock
/// (and can therefore fire scheduled heal events).
struct RetryPolicy {
  int max_attempts = 5;
  uint64_t base_backoff_nanos = 200 * 1000;     ///< 200 µs first backoff
  uint64_t max_backoff_nanos = 20 * 1000 * 1000;   ///< 20 ms cap per wait
  uint64_t op_timeout_nanos = 400 * 1000 * 1000;   ///< 400 ms virtual deadline
};

/// The SAP HANA SOE as one object graph (Figure 3): query-processing nodes
/// (v2lqp), the distributed query coordinator (v2dqp), the transaction
/// broker over the CORFU-style shared log (v2transact), the catalog/data
/// discovery (v2catalog), discovery&auth (v2disc&auth), and the cluster
/// manager with its statistics service (v2clustermgr, v2stats). Nodes are
/// in-process objects; the network is a cost-accounted fault-injection
/// fabric (src/soe/network.h): a dropped message surfaces as a retried
/// call, never as silent success.
class SoeCluster {
 public:
  struct Options {
    int num_nodes = 4;
    int log_units = 3;
    int log_replication = 2;
    /// Passed through to SharedLog::Options::durable_dir: non-empty makes
    /// every log-unit write fsync to `<dir>/unit<k>.log`, and a fresh
    /// cluster pointed at the same directory recovers the log on startup.
    std::string log_durable_dir;
    NodeMode default_mode = NodeMode::kOltp;
    SimulatedNetwork::Options net;
    RetryPolicy retry;
    uint64_t fault_seed = 42;  ///< seeds retry jitter (forked from net's stream)
  };

  explicit SoeCluster(Options options);

  // ---- DDL (catalog + cluster manager) ----

  /// Creates a distributed table: registers schema+spec, places each
  /// partition on `replication` nodes (round-robin), creates local tables.
  Status CreateTable(const std::string& name, const Schema& schema,
                     const PartitionSpec& spec, int replication = 1);

  // ---- Writes (transaction broker, v2transact) ----

  /// Commits one transaction of inserts; returns its commit offset. OLTP
  /// nodes hosting touched partitions apply synchronously; OLAP nodes lag
  /// until Poll. The append is retried under the RetryPolicy; an OK return
  /// means the record is durable in the log (node applies are best-effort
  /// — an unreachable node just stays stale until it next syncs).
  StatusOr<uint64_t> CommitInserts(const std::string& table, const std::vector<Row>& rows);
  StatusOr<uint64_t> Insert(const std::string& table, const Row& row) {
    return CommitInserts(table, {row});
  }

  // ---- Reads (distributed query coordinator, v2dqp) ----

  /// Scatter/gather aggregate: predicate + aggregates (+ optional group-by
  /// column) evaluated per partition, partials merged at the coordinator.
  /// AVG is decomposed into SUM+COUNT for mergeability. Per-partition tasks
  /// retry with backoff and fail over across replicas.
  StatusOr<ResultSet> DistributedAggregate(const std::string& table,
                                           const ExprPtr& predicate,
                                           const std::string& group_column,
                                           std::vector<AggSpec> aggregates);

  /// Scatter/gather row collection (same retry/failover discipline).
  StatusOr<ResultSet> DistributedScan(const std::string& table, const ExprPtr& predicate);

  /// Executes a lowered distributed plan (DESIGN.md §14): stages run in
  /// topological order; partition-sited fragments retry with replica
  /// failover, node-sited shuffle consumers fail over to any live node.
  /// Repartition/broadcast outputs stay in coordinator mailboxes and are
  /// charged on the fabric producer->consumer when the consuming task runs
  /// (co-located rows are free); only gather stages pay coordinator
  /// traffic. Returns the last stage's gathered rows.
  StatusOr<ResultSet> RunFragments(const DistributedPlan& plan);

  /// One coordinator-side backoff step between whole-query attempts (the
  /// SQL bridge re-plans and re-runs after a mid-query node loss): waits
  /// the `attempt`-th backoff in virtual time and fires due fault events.
  void CoordinatorBackoff(int attempt);

  const DistributedQueryStats& last_query_stats() const { return last_stats_; }

  /// Coordinator-side tracing of distributed queries. When on, each
  /// DistributedScan/DistributedAggregate attaches an OperatorSpan tree to
  /// its ResultSet: the coordinator span on top, one child span per
  /// per-partition task (labeled with the partition table and serving
  /// node, timed in virtual nanos). The coordinator loop is
  /// single-threaded; tracing is not safe across concurrent distributed
  /// queries on one cluster.
  void set_trace(bool on) { trace_ = on; }
  const std::shared_ptr<OperatorSpan>& last_trace() const {
    return last_trace_;
  }

  // ---- Node lifecycle (cluster manager, v2clustermgr) ----

  Status SetNodeMode(int node, NodeMode mode);
  /// Simulates a node crash: discovery marks it down, the fabric isolates
  /// it, queries fail over. The node keeps its state and catches up from
  /// the log on restart.
  Status KillNode(int node);
  Status RestartNode(int node);
  /// Rebuilds all partitions of dead nodes onto live ones by replaying the
  /// shared log (the prepackaged-partition redistribution of §IV-B).
  /// Idempotent and resumable: interrupted replays continue from their
  /// per-partition watermark on the next call.
  Status Rebalance();

  /// OLAP catch-up ("updates can be incorporated by regularly polling the
  /// log"). Returns records applied.
  StatusOr<uint64_t> PollNode(int node);
  /// Commit offset lag of a node against the log tail.
  uint64_t Staleness(int node) const;

  // ---- Fault schedule (chaos harness) ----

  /// Installs a scripted fault sequence, fired as the virtual clock passes
  /// each event's time. Replaces any previous schedule.
  void InstallFaultSchedule(FaultSchedule schedule);
  /// Fires every due event; called automatically at operation boundaries
  /// and inside retry backoffs.
  void PumpFaults();
  size_t fault_events_fired() const { return fault_schedule_.fired(); }

  /// Total per-operation retry waits performed since construction.
  uint64_t total_retries() const { return total_retries_; }

  // ---- Introspection ----
  SoeNode* node(int id) { return nodes_[id].get(); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  SharedLog& log() { return log_; }
  SimulatedNetwork& network() { return net_; }
  CatalogService& catalog() { return catalog_; }
  DiscoveryService& discovery() { return discovery_; }
  ClusterStatisticsService& statistics() { return stats_; }

  /// Cluster-wide metric registry (DESIGN.md §10). Every subsystem records
  /// here: the fault fabric (`soe.net.*`), the shared log (`soe.log.*`),
  /// the retry layer (`soe.retry.*`), the distributed query coordinator
  /// (`soe.dqp.*`), the transaction broker (`soe.txn.*`), the cluster
  /// manager (`soe.clustermgr.*`), and v2stats (`soe.node.<id>.*`).
  /// `metrics().TextPage()` is the cluster's Prometheus-style scrape.
  metrics::Registry& metrics() { return metrics_; }

 private:
  /// First live node hosting a partition (primary preferred).
  StatusOr<int> RouteToNode(const CatalogService::TableInfo& info, size_t partition) const;
  /// Brings an OLTP node up to the log tail before it serves a read.
  Status SyncForRead(SoeNode* node);
  /// Runs `op` with bounded retries/backoff on Unavailable. Non-retryable
  /// errors pass through unchanged.
  Status WithRetries(const char* what, const std::function<Status()>& op);
  /// Backoff for `attempt` (0-based): exponential, capped, half jittered.
  uint64_t BackoffNanos(int attempt);
  /// Dispatches `plan` for partition `p` to a live replica with retry and
  /// failover; on success returns the rows and the serving node via `served_by`.
  StatusOr<ResultSet> RunPartitionTask(const CatalogService::TableInfo& info,
                                       size_t p, const PlanPtr& plan, int* served_by);
  /// Runs one fragment task with bounded retries: each attempt walks the
  /// candidate nodes in order (skipping dead ones), charges dispatch +
  /// staged-input delivery + (for gather stages) per-row results on the
  /// fabric, and executes the fragment on the serving node. Nothing merges
  /// until a full attempt succeeds, so retries never double-count.
  StatusOr<ResultSet> RunFragmentTask(
      const std::string& label, const std::vector<int>& candidates,
      bool sync_for_read, const PlanPtr& plan,
      const std::vector<SoeNode::FragmentInput>& inputs, bool gather_rows,
      int* served_by);
  /// When tracing: wraps the per-task spans collected since `trace_start`
  /// under a coordinator span and attaches it to `out` + last_trace().
  void FinishTrace(const std::string& label, uint64_t trace_start,
                   ResultSet* out);

  /// Cached registry pointers for the cluster's own layers (fabric and log
  /// cache their own); created once in the constructor.
  struct ClusterMetrics {
    metrics::Counter* retries = nullptr;           ///< soe.retry.count
    metrics::Counter* backoff_nanos = nullptr;     ///< soe.retry.backoff_nanos
    metrics::Histogram* backoff_hist = nullptr;    ///< soe.retry.backoff_wait_nanos
    metrics::Counter* dqp_queries = nullptr;       ///< soe.dqp.queries
    metrics::Counter* dqp_result_bytes = nullptr;  ///< soe.dqp.result_bytes
    metrics::Counter* dqp_shuffle_bytes = nullptr; ///< soe.dqp.shuffle_bytes
    metrics::Counter* dqp_fragments = nullptr;     ///< soe.dqp.fragments
    metrics::Counter* dqp_failovers = nullptr;     ///< soe.dqp.failovers
    metrics::Histogram* task_nanos = nullptr;      ///< soe.dqp.task_virtual_nanos
    metrics::Counter* txn_commits = nullptr;       ///< soe.txn.commits
    metrics::Counter* txn_rows = nullptr;          ///< soe.txn.rows_committed
    metrics::Counter* node_kills = nullptr;        ///< soe.clustermgr.node_kills
    metrics::Counter* node_restarts = nullptr;     ///< soe.clustermgr.node_restarts
    metrics::Counter* rebuilds = nullptr;          ///< soe.clustermgr.partition_rebuilds
    std::vector<metrics::Counter*> node_rpcs;      ///< soe.rpc.node.<id>.tasks
  };

  Options options_;
  metrics::Registry metrics_;  ///< must outlive every subsystem recording into it
  SimulatedNetwork net_;
  SharedLog log_;
  CatalogService catalog_;
  DiscoveryService discovery_;
  ClusterStatisticsService stats_;
  ClusterMetrics cm_;
  std::vector<std::unique_ptr<SoeNode>> nodes_;
  int next_placement_ = 0;
  DistributedQueryStats last_stats_;
  bool trace_ = false;
  std::vector<OperatorSpan> task_spans_;  ///< current query's task spans
  std::shared_ptr<OperatorSpan> last_trace_;
  FaultSchedule fault_schedule_;
  Random jitter_rng_;
  uint64_t total_retries_ = 0;
};

}  // namespace poly

#endif  // POLY_SOE_CLUSTER_H_
