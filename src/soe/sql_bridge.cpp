#include "soe/sql_bridge.h"

#include <algorithm>
#include <map>

#include "query/executor.h"
#include "query/optimizer.h"
#include "query/sql_parser.h"
#include "storage/mvcc.h"
#include "txn/transaction_manager.h"

namespace poly {

namespace {

/// Collects the scan nodes of a plan (in-order).
void CollectScans(const PlanNode& node, std::vector<const PlanNode*>* out) {
  if (node.kind == PlanKind::kScan) out->push_back(&node);
  for (const auto& child : node.children) CollectScans(*child, out);
}

/// True if any node of the plan is a projection (residuals without one
/// keep the gathered column names).
bool HasProject(const PlanNode& node) {
  if (node.kind == PlanKind::kProject) return true;
  for (const auto& child : node.children) {
    if (HasProject(*child)) return true;
  }
  return false;
}

}  // namespace

StatusOr<ResultSet> SoeSqlBridge::GatherAndExecute(const PlanPtr& plan) {
  std::vector<const PlanNode*> scans;
  CollectScans(*plan, &scans);
  // Predicate pushdown survives a table being scanned more than once: the
  // per-scan predicates are OR-combined, so the gathered rows are a
  // superset of what every scan needs, and each scan re-applies its own
  // predicate against the staged table. One unpredicated scan forces the
  // whole table (its OR would be TRUE).
  std::map<std::string, ExprPtr> pushdown;
  std::map<std::string, bool> gather_all;
  for (const PlanNode* scan : scans) {
    if (scan->scan_predicate == nullptr) {
      gather_all[scan->table] = true;
      continue;
    }
    auto [it, inserted] = pushdown.emplace(scan->table, scan->scan_predicate);
    if (!inserted) it->second = Expr::Or(it->second, scan->scan_predicate);
  }

  Database staging;
  TransactionManager staging_tm;
  for (const PlanNode* scan : scans) {
    if (staging.GetTable(scan->table).ok()) continue;  // already staged
    POLY_ASSIGN_OR_RETURN(const CatalogService::TableInfo* info,
                          cluster_->catalog().Lookup(scan->table));
    ExprPtr predicate =
        gather_all[scan->table] ? nullptr : pushdown[scan->table];
    POLY_ASSIGN_OR_RETURN(ResultSet gathered,
                          cluster_->DistributedScan(scan->table, predicate));
    POLY_ASSIGN_OR_RETURN(ColumnTable * t,
                          staging.CreateTable(scan->table, info->schema));
    auto txn = staging_tm.Begin();
    for (const Row& row : gathered.rows) {
      POLY_RETURN_IF_ERROR(staging_tm.Insert(txn.get(), t, row));
    }
    POLY_RETURN_IF_ERROR(staging_tm.Commit(txn.get()));
  }
  Executor exec(&staging, staging_tm.AutoCommitView());
  return exec.Execute(plan);
}

StatusOr<ResultSet> SoeSqlBridge::RunResidual(const DistributedPlan& dplan,
                                              ResultSet gathered) {
  // The residual's leaf scans the staged gather output. Declared types are
  // placeholders — column storage holds Values generically and the residual
  // expressions evaluate whatever the fragments produced.
  Database staging;
  std::vector<ColumnDef> defs;
  defs.reserve(dplan.gather_columns.size());
  for (size_t c = 0; c < dplan.gather_columns.size(); ++c) {
    defs.emplace_back("_c" + std::to_string(c), DataType::kInt64);
  }
  POLY_ASSIGN_OR_RETURN(
      ColumnTable * t,
      staging.CreateTable(dplan.residual_input, Schema(std::move(defs))));
  for (const Row& row : gathered.rows) {
    POLY_RETURN_IF_ERROR(t->AppendVersion(row, /*cts_stamp=*/1).status());
  }
  Executor exec(&staging, LatestCommittedView());
  POLY_ASSIGN_OR_RETURN(ResultSet rs, exec.Execute(dplan.residual));
  if (!HasProject(*dplan.residual) &&
      rs.column_names.size() == dplan.gather_columns.size()) {
    rs.column_names = dplan.gather_columns;
  }
  rs.trace = gathered.trace;  // keep the distributed span tree
  return rs;
}

StatusOr<ResultSet> SoeSqlBridge::Execute(const std::string& sql) {
  // Shell database: one empty table per catalog entry so the parser can
  // bind column names against the distributed schemas.
  Database shell;
  for (const std::string& name : cluster_->catalog().TableNames()) {
    POLY_ASSIGN_OR_RETURN(const CatalogService::TableInfo* info,
                          cluster_->catalog().Lookup(name));
    POLY_RETURN_IF_ERROR(shell.CreateTable(name, info->schema).status());
  }
  SqlParser parser(&shell);
  POLY_ASSIGN_OR_RETURN(PlanPtr plan, parser.Parse(sql));
  Optimizer opt(nullptr, &shell);
  plan = opt.Optimize(plan);

  if (force_gather_) {
    last_plan_ = "strategy=gather (forced)\n" + plan->ToString();
    return GatherAndExecute(plan);
  }

  // Whole-query attempts. A node lost mid-shuffle fails the run with
  // Unavailable once per-task retries and replica failover are exhausted;
  // the coordinator backs off (advancing virtual time, which fires due
  // heal/kill events) and re-plans, so shuffle consumers are re-sited on
  // the surviving nodes.
  constexpr int kMaxQueryAttempts = 3;
  Status last = Status::Unavailable("distributed query never attempted");
  for (int attempt = 0; attempt < kMaxQueryAttempts; ++attempt) {
    if (attempt > 0) cluster_->CoordinatorBackoff(attempt - 1);
    DistributedPlanner planner(&cluster_->catalog(), &cluster_->discovery(),
                               planner_options_);
    POLY_ASSIGN_OR_RETURN(DistributedPlan dplan, planner.Plan(plan));
    last_plan_ = dplan.ToString();
    if (dplan.use_gather_fallback) {
      // Explicit last resort for shapes the planner cannot place; the
      // annotation above records strategy=gather for introspection.
      return GatherAndExecute(plan);
    }
    auto run = cluster_->RunFragments(dplan);
    if (!run.ok()) {
      if (!run.status().IsUnavailable()) return run.status();
      last = run.status();
      continue;
    }
    if (dplan.residual == nullptr) return run;
    return RunResidual(dplan, std::move(*run));
  }
  return last;
}

}  // namespace poly
