#include "soe/sql_bridge.h"

#include <algorithm>
#include <map>

#include "query/executor.h"
#include "query/optimizer.h"
#include "query/sql_parser.h"
#include "txn/transaction_manager.h"

namespace poly {

namespace {

/// Applies Sort and Limit nodes to a materialized result.
void ApplySort(const std::vector<SortKey>& keys, ResultSet* rs) {
  std::stable_sort(rs->rows.begin(), rs->rows.end(), [&](const Row& a, const Row& b) {
    for (const SortKey& key : keys) {
      if (a[key.column] < b[key.column]) return key.ascending;
      if (b[key.column] < a[key.column]) return !key.ascending;
    }
    return false;
  });
}

}  // namespace

namespace {

/// Collects the scan nodes of a plan (in-order).
void CollectScans(const PlanNode& node, std::vector<const PlanNode*>* out) {
  if (node.kind == PlanKind::kScan) out->push_back(&node);
  for (const auto& child : node.children) CollectScans(*child, out);
}

}  // namespace

StatusOr<ResultSet> SoeSqlBridge::GatherAndExecute(const PlanPtr& plan) {
  std::vector<const PlanNode*> scans;
  CollectScans(*plan, &scans);
  // Predicate pushdown to the cluster is safe only when a table is scanned
  // once; a table scanned twice gathers unfiltered.
  std::map<std::string, int> scan_count;
  for (const PlanNode* scan : scans) ++scan_count[scan->table];

  Database staging;
  TransactionManager staging_tm;
  for (const PlanNode* scan : scans) {
    if (staging.GetTable(scan->table).ok()) continue;  // already staged
    POLY_ASSIGN_OR_RETURN(const CatalogService::TableInfo* info,
                          cluster_->catalog().Lookup(scan->table));
    ExprPtr pushdown =
        scan_count[scan->table] == 1 ? scan->scan_predicate : nullptr;
    POLY_ASSIGN_OR_RETURN(ResultSet gathered,
                          cluster_->DistributedScan(scan->table, pushdown));
    POLY_ASSIGN_OR_RETURN(ColumnTable * t,
                          staging.CreateTable(scan->table, info->schema));
    auto txn = staging_tm.Begin();
    for (const Row& row : gathered.rows) {
      POLY_RETURN_IF_ERROR(staging_tm.Insert(txn.get(), t, row));
    }
    POLY_RETURN_IF_ERROR(staging_tm.Commit(txn.get()));
  }
  Executor exec(&staging, staging_tm.AutoCommitView());
  return exec.Execute(plan);
}

StatusOr<ResultSet> SoeSqlBridge::Execute(const std::string& sql) {
  // Shell database: one empty table per catalog entry so the parser can
  // bind column names against the distributed schemas.
  Database shell;
  for (const std::string& name : cluster_->catalog().TableNames()) {
    POLY_ASSIGN_OR_RETURN(const CatalogService::TableInfo* info,
                          cluster_->catalog().Lookup(name));
    POLY_RETURN_IF_ERROR(shell.CreateTable(name, info->schema).status());
  }
  SqlParser parser(&shell);
  POLY_ASSIGN_OR_RETURN(PlanPtr plan, parser.Parse(sql));
  Optimizer opt(nullptr, &shell);
  plan = opt.Optimize(plan);

  // Peel residual coordinator-side operators off the top.
  size_t limit = 0;
  bool has_limit = false;
  std::vector<SortKey> sort_keys;
  std::vector<ExprPtr> projections;
  std::vector<std::string> output_names;
  bool has_project = false;
  const PlanNode* node = plan.get();
  if (node->kind == PlanKind::kLimit) {
    has_limit = true;
    limit = node->limit;
    node = node->children[0].get();
  }
  if (node->kind == PlanKind::kSort) {
    sort_keys = node->sort_keys;
    node = node->children[0].get();
  }
  if (node->kind == PlanKind::kProject) {
    has_project = true;
    projections = node->projections;
    output_names = node->output_names;
    node = node->children[0].get();
  }

  ResultSet rs;
  if (node->kind == PlanKind::kAggregate &&
      node->children[0]->kind == PlanKind::kScan && node->group_by.size() <= 1) {
    // Fast path: fully distributed partial aggregation.
    const PlanNode& agg = *node;
    const PlanNode& scan = *agg.children[0];
    POLY_ASSIGN_OR_RETURN(const CatalogService::TableInfo* info,
                          cluster_->catalog().Lookup(scan.table));
    std::string group_column;
    if (!agg.group_by.empty()) {
      group_column = info->schema.column(agg.group_by[0]).name;
    }
    POLY_ASSIGN_OR_RETURN(rs, cluster_->DistributedAggregate(
                                  scan.table, scan.scan_predicate, group_column,
                                  agg.aggregates));
  } else if (node->kind == PlanKind::kScan) {
    POLY_ASSIGN_OR_RETURN(rs,
                          cluster_->DistributedScan(node->table, node->scan_predicate));
  } else {
    // Gather-and-execute: ship each base table's (predicate-filtered) rows
    // to the coordinator, stage them, run the remaining plan locally.
    POLY_ASSIGN_OR_RETURN(rs, GatherAndExecute(plan));
    return rs;  // plan already includes project/sort/limit
  }

  // Residual projection (column refs / expressions over the gathered rows).
  if (has_project) {
    ResultSet projected;
    projected.column_names = output_names;
    projected.trace = rs.trace;  // keep the distributed span tree
    projected.rows.reserve(rs.rows.size());
    for (const Row& row : rs.rows) {
      Row out;
      out.reserve(projections.size());
      for (const ExprPtr& e : projections) out.push_back(e->Eval(row));
      projected.rows.push_back(std::move(out));
    }
    rs = std::move(projected);
  }
  if (!sort_keys.empty()) ApplySort(sort_keys, &rs);
  if (has_limit && rs.rows.size() > limit) rs.rows.resize(limit);
  return rs;
}

}  // namespace poly
