#ifndef POLY_SOE_FAULT_SCHEDULE_H_
#define POLY_SOE_FAULT_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace poly {

/// One scripted fault: "at virtual time T, do X". Node events use cluster
/// node ids; partition events use network endpoint ids (node ids and the
/// reserved negative endpoints of network.h), so a schedule can also cut a
/// node off from the shared log or the coordinator.
struct FaultEvent {
  enum class Kind {
    kCrashNode,        ///< a: node id — discovery down + network isolated
    kRestartNode,      ///< a: node id — rejoins (keeps state, catches up)
    kPartition,        ///< a, b: endpoints — symmetric link cut
    kPartitionOneWay,  ///< a, b: endpoints — a -> b only
    kHeal,             ///< a, b: endpoints — both directions restored
    kHealAll,          ///< every link restored
    kSetDropRate,      ///< value: new per-message drop probability
    kSetDuplicateRate, ///< value: new per-message duplicate probability
    kSetDelayRate,     ///< value: new per-message delay probability
  };

  uint64_t at_virtual_nanos = 0;
  Kind kind = Kind::kHealAll;
  int a = -1;
  int b = -1;
  double value = 0.0;
};

/// An ordered script of fault events consumed as the cluster's virtual clock
/// advances. The cluster pumps the schedule at each operation boundary (and
/// inside retry backoff waits), firing every event whose time has come —
/// deterministic because the virtual clock itself is deterministic.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(std::vector<FaultEvent> events);

  /// Next unfired event, or nullptr when exhausted.
  const FaultEvent* Peek() const {
    return next_ < events_.size() ? &events_[next_] : nullptr;
  }
  void Pop() { ++next_; }

  bool done() const { return next_ >= events_.size(); }
  size_t fired() const { return next_; }
  size_t size() const { return events_.size(); }

  /// Generates a reproducible random chaos script: transient symmetric /
  /// asymmetric partitions (every cut is healed before `horizon_nanos`),
  /// node-from-log isolation, and drop-rate phase changes. Everything is
  /// derived from `seed`; crash/restart decisions are intentionally left to
  /// the driving workload, which can keep liveness invariants.
  static FaultSchedule RandomSchedule(uint64_t seed, int num_nodes, int num_log_units,
                                      uint64_t horizon_nanos, int num_disruptions);

 private:
  std::vector<FaultEvent> events_;  ///< sorted by at_virtual_nanos (stable)
  size_t next_ = 0;
};

}  // namespace poly

#endif  // POLY_SOE_FAULT_SCHEDULE_H_
