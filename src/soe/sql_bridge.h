#ifndef POLY_SOE_SQL_BRIDGE_H_
#define POLY_SOE_SQL_BRIDGE_H_

#include <string>

#include "soe/cluster.h"
#include "soe/distributed_planner.h"

namespace poly {

/// The paper's third pillar: "a powerful orchestration [...] to provide a
/// single point of entry" (§VI). This bridge lets one SQL string run
/// against a distributed SOE table: the statement is parsed against the
/// cluster catalog, the DistributedPlanner lowers the optimized plan into
/// per-node fragment stages, and the cluster's coordinator (v2dqp) runs
/// them — partition-pruned scans node-local, equi-joins as broadcast or
/// repartition-hash joins, GROUP BY of any arity as partial-per-node ->
/// shuffle-by-key -> final. Residual projection/sort/limit run at the
/// entry point over the gathered rows.
///
/// A mid-query node loss surfaces as Unavailable once per-task retries and
/// replica failover are exhausted; the bridge backs off and re-plans
/// against the new liveness picture before retrying the whole query.
/// Shapes the planner cannot place (and only those) fall back to
/// gather-and-execute — the explicit last resort, recorded as
/// `strategy=gather` in AnnotatedPlan().
class SoeSqlBridge {
 public:
  explicit SoeSqlBridge(SoeCluster* cluster) : cluster_(cluster) {}

  StatusOr<ResultSet> Execute(const std::string& sql);

  /// EXPLAIN-style annotation of the last Execute: the chosen strategy,
  /// one line per fragment stage with placement and exchange mode, the
  /// fragment plans, and the coordinator residual.
  const std::string& AnnotatedPlan() const { return last_plan_; }

  /// Forces every query through gather-and-execute (bench baseline and
  /// tests; the planner is bypassed entirely).
  void set_force_gather(bool on) { force_gather_ = on; }

  /// Overrides the planner's knobs (e.g. broadcast_threshold_rows = 0
  /// forces every equi-join onto the repartition path).
  void set_planner_options(DistributedPlanner::Options options) {
    planner_options_ = options;
  }

  /// Forwards to SoeCluster::set_trace: when on, distributed results carry
  /// an OperatorSpan tree (coordinator span with one child per fragment
  /// task) that survives residual projection/sort/limit.
  void set_trace(bool on) { cluster_->set_trace(on); }

  /// Last resort: gathers every referenced table (per-table predicates
  /// OR-combined across its scans and pushed down) into a coordinator-local
  /// staging database and runs the full plan there. Public so hand-built
  /// plans beyond the SQL grammar (e.g. self-joins) can use the same path.
  StatusOr<ResultSet> GatherAndExecute(const PlanPtr& plan);

 private:
  /// Stages the gathered rows under the planner's residual-input name and
  /// runs the coordinator residual on the local executor.
  StatusOr<ResultSet> RunResidual(const DistributedPlan& dplan, ResultSet gathered);

  SoeCluster* cluster_;
  DistributedPlanner::Options planner_options_;
  std::string last_plan_;
  bool force_gather_ = false;
};

}  // namespace poly

#endif  // POLY_SOE_SQL_BRIDGE_H_
