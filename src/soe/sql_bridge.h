#ifndef POLY_SOE_SQL_BRIDGE_H_
#define POLY_SOE_SQL_BRIDGE_H_

#include <string>

#include "soe/cluster.h"

namespace poly {

/// The paper's third pillar: "a powerful orchestration [...] to provide a
/// single point of entry" (§VI). This bridge lets one SQL string run
/// against a distributed SOE table: the statement is parsed against the
/// cluster catalog, the scan/filter/aggregate core is executed by the
/// distributed query coordinator (v2dqp), and residual projection/sort/
/// limit run at the entry point.
///
/// Execution strategy:
///  * single-table aggregates run fully distributed (partial aggregation on
///    the nodes, merge at the coordinator);
///  * plain scans run as distributed scatter/gather;
///  * everything else (JOINs, multi-key GROUP BY, ...) uses gather-and-
///    execute: each referenced table's rows are gathered with its pushed-
///    down predicate, staged at the entry point, and the full plan runs on
///    the single-node executor — the paper's "one single execution plan"
///    with the coordinator as the final operator site.
class SoeSqlBridge {
 public:
  explicit SoeSqlBridge(SoeCluster* cluster) : cluster_(cluster) {}

  StatusOr<ResultSet> Execute(const std::string& sql);

  /// Forwards to SoeCluster::set_trace: when on, results of the distributed
  /// fast paths carry an OperatorSpan tree (coordinator span with one child
  /// per per-partition task) that survives residual projection/sort/limit.
  void set_trace(bool on) { cluster_->set_trace(on); }

 private:
  /// Fallback: gathers every referenced table (with per-table predicate
  /// pushdown) into a coordinator-local staging database and runs the full
  /// plan there.
  StatusOr<ResultSet> GatherAndExecute(const PlanPtr& plan);

  SoeCluster* cluster_;
};

}  // namespace poly

#endif  // POLY_SOE_SQL_BRIDGE_H_
