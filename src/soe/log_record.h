#ifndef POLY_SOE_LOG_RECORD_H_
#define POLY_SOE_LOG_RECORD_H_

#include <string>
#include <vector>

#include "common/serializer.h"
#include "types/schema.h"

namespace poly {

/// One committed transaction as stored in the shared log: a batch of
/// partition-addressed writes. The log offset doubles as the commit
/// timestamp ("a transaction broker service executes, serializes, and
/// persists transactions to a distributed shared log", §IV-B).
struct SoeWrite {
  std::string table;
  size_t partition = 0;
  Row row;
};

struct SoeLogRecord {
  std::vector<SoeWrite> writes;

  std::string Encode() const;
  static StatusOr<SoeLogRecord> Decode(const std::string& data);
};

}  // namespace poly

#endif  // POLY_SOE_LOG_RECORD_H_
