#ifndef POLY_QUERY_SQL_PARSER_H_
#define POLY_QUERY_SQL_PARSER_H_

#include <string>

#include "query/plan.h"
#include "storage/database.h"

namespace poly {

/// The "common SQL-like internal query language" of §II: every engine's
/// surface language lowers to plans; this parser is the SQL entry point.
///
/// Supported grammar (case-insensitive keywords):
///
///   SELECT [DISTINCT] <item> [, <item>]...
///   FROM <table>
///   [JOIN <table> ON <col> = <col>]...
///   [WHERE <expr>]
///   [GROUP BY <col> [, <col>]...]
///   [HAVING <expr>]
///   [ORDER BY <output-col> [ASC|DESC] [, ...]]
///   [LIMIT <n>]
///
///   item  := * | <expr> [AS <name>]
///          | COUNT(*) | COUNT(<expr>) | SUM(<expr>) | AVG(<expr>)
///          | MIN(<expr>) | MAX(<expr>)
///   expr  := or-chain of AND/NOT/comparisons/arithmetic over columns,
///            integer/double/string/boolean/NULL literals, parentheses,
///            <expr> LIKE '<pattern>', <expr> IN (<literal>, ...),
///            <expr> IS [NOT] NULL
///
/// Column names resolve against the FROM/JOIN tables; after a join, names
/// may be qualified ("orders.id") to disambiguate. The resulting plan runs
/// through the usual Optimizer/Executor/QueryCompiler pipeline.
///
/// HAVING requires GROUP BY or an aggregate select list and resolves
/// against the aggregate's output: GROUP BY columns (by name or alias),
/// select-list aggregate aliases, and aggregate calls. An aggregate call in
/// HAVING that does not match a select-list aggregate (same function and
/// argument) is computed as a hidden aggregate slot and dropped by the
/// final projection — `SELECT region FROM t GROUP BY region HAVING
/// COUNT(*) > 5` works. The plan shape is Aggregate -> Filter -> Project
/// (the optimizer never pushes filters through an aggregate).
///
/// DISTINCT dedups the projected rows before ORDER BY/LIMIT, lowered as an
/// Aggregate over every output column with no aggregate functions — rows
/// keep first-occurrence order. The compiled path declines that shape and
/// Database::Execute falls back to the interpreted executor.
class SqlParser {
 public:
  explicit SqlParser(const Database* db) : db_(db) {}

  /// Parses one SELECT statement into a plan.
  StatusOr<PlanPtr> Parse(const std::string& sql) const;

 private:
  const Database* db_;
};

}  // namespace poly

#endif  // POLY_QUERY_SQL_PARSER_H_
