#ifndef POLY_QUERY_SQL_PARSER_H_
#define POLY_QUERY_SQL_PARSER_H_

#include <string>

#include "query/plan.h"
#include "storage/database.h"

namespace poly {

/// The "common SQL-like internal query language" of §II: every engine's
/// surface language lowers to plans; this parser is the SQL entry point.
///
/// Supported grammar (case-insensitive keywords):
///
///   SELECT <item> [, <item>]...
///   FROM <table>
///   [JOIN <table> ON <col> = <col>]...
///   [WHERE <expr>]
///   [GROUP BY <col> [, <col>]...]
///   [ORDER BY <output-col> [ASC|DESC] [, ...]]
///   [LIMIT <n>]
///
///   item  := * | <expr> [AS <name>]
///          | COUNT(*) | COUNT(<expr>) | SUM(<expr>) | AVG(<expr>)
///          | MIN(<expr>) | MAX(<expr>)
///   expr  := or-chain of AND/NOT/comparisons/arithmetic over columns,
///            integer/double/string/boolean/NULL literals, parentheses,
///            <expr> LIKE '<pattern>', <expr> IN (<literal>, ...),
///            <expr> IS [NOT] NULL
///
/// Column names resolve against the FROM/JOIN tables; after a join, names
/// may be qualified ("orders.id") to disambiguate. The resulting plan runs
/// through the usual Optimizer/Executor/QueryCompiler pipeline.
class SqlParser {
 public:
  explicit SqlParser(const Database* db) : db_(db) {}

  /// Parses one SELECT statement into a plan.
  StatusOr<PlanPtr> Parse(const std::string& sql) const;

 private:
  const Database* db_;
};

}  // namespace poly

#endif  // POLY_QUERY_SQL_PARSER_H_
