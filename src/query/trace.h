#ifndef POLY_QUERY_TRACE_H_
#define POLY_QUERY_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace poly {

/// One executed plan node's measurements (DESIGN.md §10). Both execution
/// paths produce these: the interpreted Executor wraps every `Exec(node)`
/// recursion in a span; the compiled QueryCompiler emits a span per fused
/// table loop. Spans are recorded per *operator*, never per row, so tracing
/// stays within the E21 overhead budget (<3%).
struct OperatorSpan {
  std::string label;      ///< e.g. "Scan(orders)", "Aggregate", "FusedScan(orders)"
  uint64_t rows_in = 0;   ///< rows consumed (scans: row versions visited)
  uint64_t rows_out = 0;  ///< rows produced (the operator's result cardinality)
  uint64_t bytes_out = 0; ///< estimated size of the produced rows
  uint64_t wall_nanos = 0;  ///< wall time including children
  uint64_t cpu_nanos = 0;   ///< coordinator-thread CPU time including children
  std::vector<OperatorSpan> children;

  /// Wall time net of children — the operator's own cost.
  uint64_t SelfWallNanos() const;

  /// EXPLAIN ANALYZE-style rendering: the plan tree annotated per node with
  /// rows in/out, bytes, and wall/cpu/self times.
  std::string ToString(int indent = 0) const;
};

/// Clock helpers shared by both executors (steady wall clock and the
/// calling thread's CPU clock).
uint64_t TraceWallNanos();
uint64_t TraceThreadCpuNanos();

using TracePtr = std::shared_ptr<const OperatorSpan>;

}  // namespace poly

#endif  // POLY_QUERY_TRACE_H_
