#include "query/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "resource/governor.h"

namespace poly {

namespace {

/// Sampled result-size estimate for spans: first-row bytes × row count.
/// O(columns), not O(rows) — tracing must stay off the per-row path.
uint64_t EstimateSpanBytes(const ResultSet& rs) {
  if (rs.rows.empty()) return 0;
  uint64_t row_bytes = 0;
  for (const Value& v : rs.rows.front()) {
    switch (v.type()) {
      case DataType::kString:
      case DataType::kDocument:
        row_bytes += v.AsString().size() + 4;
        break;
      case DataType::kNull:
        row_bytes += 1;
        break;
      default:
        row_bytes += 8;
    }
  }
  return row_bytes * rs.rows.size();
}

/// Display label of a plan node for its span.
std::string SpanLabel(const PlanNode& node) {
  switch (node.kind) {
    case PlanKind::kScan: {
      std::string label = "Scan(" + node.table;
      if (node.scan_partitions.size() > 1) {
        label += ", " + std::to_string(node.scan_partitions.size()) + " partitions";
      }
      if (node.scan_predicate) label += ", pushed predicate";
      return label + ")";
    }
    case PlanKind::kFilter: return "Filter";
    case PlanKind::kProject: return "Project";
    case PlanKind::kHashJoin: return "HashJoin";
    case PlanKind::kAggregate:
      return node.group_by.empty() ? "Aggregate" : "GroupAggregate";
    case PlanKind::kSort: return "Sort";
    case PlanKind::kLimit: return "Limit(" + std::to_string(node.limit) + ")";
    case PlanKind::kExchange:
      switch (node.exchange_mode) {
        case ExchangeMode::kGather: return "Exchange(gather)";
        case ExchangeMode::kBroadcast: return "Exchange(broadcast)";
        case ExchangeMode::kRepartition: return "Exchange(repartition)";
      }
      return "Exchange";
    case PlanKind::kPartialAggregate: return "PartialAggregate";
    case PlanKind::kFinalAggregate: return "FinalAggregate";
  }
  return "Unknown";
}

/// Hash of a group key / join key.
struct RowKeyHash {
  size_t operator()(const Row& key) const {
    size_t h = 1469598103934665603ULL;
    for (const auto& v : key) h = (h ^ v.Hash()) * 1099511628211ULL;
    return h;
  }
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

struct AggState {
  uint64_t count = 0;
  double sum = 0;
  int64_t sum_int = 0;
  bool all_int = true;
  bool has_value = false;
  Value min, max;
};

/// Folds one input row into the aggregate states of its group.
void UpdateAggStates(const std::vector<AggSpec>& aggregates,
                     std::vector<AggState>* states, const Row& row) {
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const AggSpec& spec = aggregates[a];
    AggState& st = (*states)[a];
    Value v = spec.input ? spec.input->Eval(row) : Value::Int(1);
    if (v.is_null()) continue;
    ++st.count;
    if (v.type() == DataType::kInt64) {
      st.sum_int += v.AsInt();
    } else {
      st.all_int = false;
    }
    st.sum += v.NumericValue();
    if (!st.has_value || v < st.min) st.min = v;
    if (!st.has_value || st.max < v) st.max = v;
    st.has_value = true;
  }
}

/// Merges a worker-local partial state into `dst` (the final-merge step of
/// the parallel aggregate).
void MergeAggState(AggState* dst, const AggState& src) {
  dst->count += src.count;
  dst->sum += src.sum;
  dst->sum_int += src.sum_int;
  dst->all_int = dst->all_int && src.all_int;
  if (src.has_value) {
    if (!dst->has_value || src.min < dst->min) dst->min = src.min;
    if (!dst->has_value || dst->max < src.max) dst->max = src.max;
    dst->has_value = true;
  }
}

/// Hash-aggregation table that remembers first-occurrence order of its
/// group keys. Both the serial path and the per-morsel thread-local tables
/// use it, and the final merge walks local tables in morsel order, so group
/// emission order is the first-occurrence order over the input no matter
/// how many threads ran.
struct GroupTable {
  std::unordered_map<Row, size_t, RowKeyHash> index;
  std::vector<Row> keys;
  std::vector<std::vector<AggState>> states;

  std::vector<AggState>* FindOrAdd(const Row& key, size_t num_aggs) {
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, keys.size()).first;
      keys.push_back(key);
      states.emplace_back(num_aggs);
    }
    return &states[it->second];
  }
};

/// Hash-join build table: key -> right-row indices in ascending order, so
/// probe output enumerates matches deterministically (serial build appends
/// in row order; parallel build merges per-morsel tables in morsel order,
/// which is the same order).
using JoinIndex = std::unordered_map<Value, std::vector<size_t>, ValueHash>;

}  // namespace

// Declared in executor.h; shared with the compiled path's access
// classification.
bool TryIdRangePredicate(const ColumnTable& table, const Expr& pred, size_t* col_out,
                         uint64_t* lo_out, uint64_t* hi_out) {
  ColumnTable::ReadGuard guard(&table);
  return TryIdRangePredicate(guard, pred, col_out, lo_out, hi_out);
}

bool TryIdRangePredicate(const ColumnTable::ReadGuard& guard, const Expr& pred,
                         size_t* col_out, uint64_t* lo_out, uint64_t* hi_out) {
  if (pred.kind() != ExprKind::kCompare) return false;
  const ExprPtr& l = pred.left();
  const ExprPtr& r = pred.right();
  if (!l || !r) return false;
  if (l->kind() != ExprKind::kColumn || r->kind() != ExprKind::kLiteral) return false;
  if (pred.cmp_op() == CmpOp::kNe) return false;
  size_t col = l->column_index();
  if (col >= guard.num_columns()) return false;
  const SortedDictionary& dict = guard.col(col).main_dictionary();
  const Value& v = r->literal();
  uint64_t lo = 0, hi = dict.size();
  switch (pred.cmp_op()) {
    case CmpOp::kEq:
      lo = dict.LowerBound(v);
      hi = dict.UpperBound(v);
      break;
    case CmpOp::kLt:
      hi = dict.LowerBound(v);
      break;
    case CmpOp::kLe:
      hi = dict.UpperBound(v);
      break;
    case CmpOp::kGt:
      lo = dict.UpperBound(v);
      break;
    case CmpOp::kGe:
      lo = dict.LowerBound(v);
      break;
    case CmpOp::kNe:
      return false;
  }
  *col_out = col;
  *lo_out = lo;
  *hi_out = hi;
  return true;
}

Executor::Executor(const Database* db, ReadView view)
    : Executor(db, view, db->exec_options()) {
  if (!opts_.pool) opts_.pool = db->exec_pool();
}

Executor::Executor(const Database* db, ReadView view, const ExecOptions& opts)
    : db_(db), view_(view), opts_(opts) {}

Executor::~Executor() = default;

ThreadPool* Executor::pool() {
  if (opts_.num_threads <= 1) return nullptr;
  if (opts_.pool) return opts_.pool;
  if (!owned_pool_) {
    owned_pool_ = std::make_unique<ThreadPool>(opts_.num_threads - 1);
  }
  return owned_pool_.get();
}

void Executor::MorselMap(size_t n,
                         const std::function<void(size_t, size_t, ResultSet*)>& body,
                         ResultSet* out) {
  ThreadPool* tp = pool();
  size_t morsel = morsel_rows();
  if (tp == nullptr || n <= morsel) {
    body(0, n, out);
    return;
  }
  size_t num_morsels = (n + morsel - 1) / morsel;
  std::vector<ResultSet> frags(num_morsels);
  tp->ParallelFor(
      num_morsels,
      [&](size_t m) {
        size_t begin = m * morsel;
        body(begin, std::min(n, begin + morsel), &frags[m]);
      },
      /*grain=*/1);
  size_t total = out->rows.size();
  for (const auto& f : frags) total += f.rows.size();
  out->rows.reserve(total);
  for (auto& f : frags) out->AppendRows(std::move(f));
}

StatusOr<ResultSet> Executor::Execute(const PlanPtr& plan) {
  if (!plan) return Status::InvalidArgument("null plan");
  // Ad-hoc admission (DESIGN.md §13.2): a directly constructed Executor on
  // a governed database mints its own ticket in the caller's workload class
  // instead of bypassing admission. Callers already holding a per-query
  // budget (Database::Execute threads the ticket's node in) pass through.
  resource::AdmissionTicket ticket;
  resource::BudgetNode* entry_budget = opts_.budget;
  if (entry_budget == nullptr && db_->resource_governor() != nullptr) {
    auto admitted = db_->resource_governor()->AdmitQuery(opts_.workload_class);
    if (!admitted.ok()) return admitted.status();
    ticket = std::move(*admitted);
    opts_.budget = ticket.budget();
  }
  trace_root_.reset();
  current_span_ = nullptr;
  reservation_ = resource::Reservation(opts_.budget);
  StatusOr<ResultSet> result = Exec(*plan);
  // Charges cover execution, not the returned rows' afterlife: release
  // everything here so the budget balances to zero on success and error
  // alike (the balance oracle in resource_test.cpp checks exactly this).
  reservation_.ReleaseAll();
  // The ticket (and its per-query budget node) dies with this call.
  opts_.budget = entry_budget;
  if (result.ok() && trace_root_) result->trace = trace_root_;
  return result;
}

StatusOr<ResultSet> Executor::ChargeOutput(StatusOr<ResultSet> result) {
  if (opts_.budget == nullptr || !result.ok()) return result;
  POLY_RETURN_IF_ERROR(reservation_.Grow(EstimateSpanBytes(*result)));
  return result;
}

StatusOr<ResultSet> Executor::Exec(const PlanNode& node) {
  if (!opts_.trace) return ChargeOutput(Dispatch(node));
  OperatorSpan span;
  span.label = SpanLabel(node);
  OperatorSpan* parent = current_span_;
  current_span_ = &span;  // children hang themselves under this span
  uint64_t scanned_before = stats_.rows_scanned;
  uint64_t wall0 = TraceWallNanos();
  uint64_t cpu0 = TraceThreadCpuNanos();
  StatusOr<ResultSet> result = ChargeOutput(Dispatch(node));
  span.wall_nanos = TraceWallNanos() - wall0;
  span.cpu_nanos = TraceThreadCpuNanos() - cpu0;
  current_span_ = parent;
  if (result.ok()) {
    span.rows_out = result->num_rows();
    span.bytes_out = EstimateSpanBytes(*result);
    if (node.kind == PlanKind::kScan) {
      // A scan consumes row versions, not operator rows; parallel morsel
      // stats merge into stats_ before ScanOneTable returns, so the delta
      // is exact at every thread count.
      span.rows_in = stats_.rows_scanned - scanned_before;
    } else {
      for (const OperatorSpan& c : span.children) span.rows_in += c.rows_out;
    }
  }
  if (parent != nullptr) {
    parent->children.push_back(std::move(span));
  } else {
    trace_root_ = std::make_shared<OperatorSpan>(std::move(span));
  }
  return result;
}

StatusOr<ResultSet> Executor::Dispatch(const PlanNode& node) {
  switch (node.kind) {
    case PlanKind::kScan: return ExecScan(node);
    case PlanKind::kFilter: return ExecFilter(node);
    case PlanKind::kProject: return ExecProject(node);
    case PlanKind::kHashJoin: return ExecHashJoin(node);
    case PlanKind::kAggregate: return ExecAggregate(node);
    case PlanKind::kSort: return ExecSort(node);
    case PlanKind::kLimit: return ExecLimit(node);
    case PlanKind::kExchange: return ExecExchange(node);
    case PlanKind::kPartialAggregate: return ExecPartialAggregate(node);
    case PlanKind::kFinalAggregate: return ExecFinalAggregate(node);
  }
  return Status::Internal("unknown plan node");
}

void Executor::ScanMorsel(const ColumnTable::ReadGuard& guard,
                          const ExprPtr& predicate, bool use_range,
                          size_t range_col, uint64_t lo, uint64_t hi,
                          uint64_t begin, uint64_t end, ResultSet* out,
                          ExecStats* stats) const {
  size_t ncols = guard.num_columns();
  uint64_t main_size = ncols ? guard.col(0).main_size() : 0;
  guard.ScanVisibleRange(view_, begin, end, [&](uint64_t r) {
    ++stats->rows_scanned;
    if (use_range && r < main_size) {
      uint64_t id = guard.col(range_col).MainId(r);
      if (id < lo || id >= hi) return;
    } else if (predicate) {
      Row probe = guard.GetRow(r);
      if (!predicate->EvalBool(probe)) return;
      ++stats->rows_materialized;
      out->rows.push_back(std::move(probe));
      return;
    }
    Row row;
    row.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) row.push_back(guard.GetValue(r, c));
    ++stats->rows_materialized;
    out->rows.push_back(std::move(row));
  });
}

Status Executor::ScanOneTable(const ColumnTable& table, const ExprPtr& predicate,
                              ResultSet* out) {
  ++stats_.partitions_scanned;

  // ONE unified guard per table scan (DESIGN.md §12.5): a single epoch pin
  // covering the table state, the stamp snapshot, and a value snapshot of
  // every column. Its size() is the version store's published watermark:
  // every morsel below it reads fully-published rows AND fully-published
  // values, latch-free against concurrent writers, AddColumn, Merge, and
  // Vacuum. The guard is immutable, so all morsel workers share it.
  ColumnTable::ReadGuard guard(&table);

  size_t range_col = 0;
  uint64_t lo = 0, hi = 0;
  bool use_range =
      predicate && TryIdRangePredicate(guard, *predicate, &range_col, &lo, &hi);
  if (use_range) ++stats_.id_range_scans;

  uint64_t n = guard.size();
  ThreadPool* tp = pool();
  uint64_t morsel = morsel_rows();
  if (tp == nullptr || n <= morsel) {
    ScanMorsel(guard, predicate, use_range, range_col, lo, hi, 0, n, out, &stats_);
    return Status::OK();
  }

  // Morsel-driven scan: fixed-size row ranges over the pool, per-worker
  // fragments and stats merged in morsel order — identical output to the
  // serial scan above.
  size_t num_morsels = static_cast<size_t>((n + morsel - 1) / morsel);
  std::vector<ResultSet> frags(num_morsels);
  std::vector<ExecStats> local(num_morsels);
  tp->ParallelFor(
      num_morsels,
      [&](size_t m) {
        uint64_t begin = m * morsel;
        ScanMorsel(guard, predicate, use_range, range_col, lo, hi, begin,
                   std::min<uint64_t>(n, begin + morsel), &frags[m], &local[m]);
      },
      /*grain=*/1);
  size_t total = out->rows.size();
  for (const auto& f : frags) total += f.rows.size();
  out->rows.reserve(total);
  for (size_t m = 0; m < num_morsels; ++m) {
    stats_.rows_scanned += local[m].rows_scanned;
    stats_.rows_materialized += local[m].rows_materialized;
    out->AppendRows(std::move(frags[m]));
  }
  return Status::OK();
}

StatusOr<ResultSet> Executor::ExecScan(const PlanNode& node) {
  // Per-temperature scan accounting (DESIGN.md §10): hot base tables vs
  // "$aged" partitions. Looked up once, bumped once per partition scan —
  // never per row.
  static metrics::Counter* const hot_scans =
      metrics::Default().counter("storage.scan.hot.count");
  static metrics::Counter* const hot_rows =
      metrics::Default().counter("storage.scan.hot.rows");
  static metrics::Counter* const hot_bytes =
      metrics::Default().counter("storage.scan.hot.bytes");
  static metrics::Counter* const aged_scans =
      metrics::Default().counter("storage.scan.aged.count");
  static metrics::Counter* const aged_rows =
      metrics::Default().counter("storage.scan.aged.rows");
  static metrics::Counter* const aged_bytes =
      metrics::Default().counter("storage.scan.aged.bytes");

  ResultSet out;
  // Partition list from the optimizer (aging-aware pruning, E12); falls back
  // to the single named table.
  std::vector<std::string> tables =
      node.scan_partitions.empty() ? std::vector<std::string>{node.table}
                                   : node.scan_partitions;
  bool first = true;
  for (const auto& name : tables) {
    // Pin the partition: a shared handle keeps it alive across the scan even
    // if the tiering daemon demotes (drops) it concurrently.
    auto pinned = db_->PinTable(name);
    if (!pinned.ok() && pinned.status().IsNotFound()) {
      // Demand paging: offer the miss to the tier resolver (the tiering
      // daemon promotes demoted partitions back from warm storage and hands
      // back an already-pinned reference). Without a resolver, demoted
      // partitions keep failing loudly as before.
      if (TierResolver* resolver = db_->tier_resolver()) {
        auto resolved = resolver->ResolveMissing(name);
        if (resolved.ok()) pinned = std::move(resolved);
      }
    }
    POLY_ASSIGN_OR_RETURN(std::shared_ptr<ColumnTable> table, std::move(pinned));
    if (first) {
      for (size_t c = 0; c < table->schema().num_columns(); ++c) {
        out.column_names.push_back(table->schema().column(c).name);
      }
      first = false;
    }
    uint64_t scanned_before = stats_.rows_scanned;
    uint64_t ranges_before = stats_.id_range_scans;
    size_t rows_before = out.rows.size();
    POLY_RETURN_IF_ERROR(ScanOneTable(*table, node.scan_predicate, &out));
    bool aged = name.size() > 5 && name.compare(name.size() - 5, 5, "$aged") == 0;
    (aged ? aged_scans : hot_scans)->Add(1);
    (aged ? aged_rows : hot_rows)->Add(stats_.rows_scanned - scanned_before);
    uint64_t produced = out.rows.size() - rows_before;
    uint64_t bytes = produced * table->schema().num_columns() * 8;
    (aged ? aged_bytes : hot_bytes)->Add(bytes);
    if (opts_.track_access) {
      if (AccessObserver* observer = db_->access_observer()) {
        AccessEvent event;
        event.partition = name;
        event.rows_scanned = stats_.rows_scanned - scanned_before;
        event.bytes = bytes;
        event.point_read = stats_.id_range_scans > ranges_before;
        // This path materializes whole rows, so every schema column really
        // was read — report them all for per-column heat.
        for (size_t c = 0; c < table->schema().num_columns(); ++c) {
          event.columns.push_back(table->schema().column(c).name);
        }
        observer->OnAccess(event);
      }
    }
  }
  return out;
}

StatusOr<ResultSet> Executor::ExecFilter(const PlanNode& node) {
  POLY_ASSIGN_OR_RETURN(ResultSet in, Exec(*node.children[0]));
  ResultSet out;
  out.column_names = in.column_names;
  MorselMap(
      in.rows.size(),
      [&](size_t begin, size_t end, ResultSet* frag) {
        for (size_t i = begin; i < end; ++i) {
          if (node.predicate->EvalBool(in.rows[i])) {
            frag->rows.push_back(std::move(in.rows[i]));
          }
        }
      },
      &out);
  return out;
}

StatusOr<ResultSet> Executor::ExecProject(const PlanNode& node) {
  POLY_ASSIGN_OR_RETURN(ResultSet in, Exec(*node.children[0]));
  ResultSet out;
  out.column_names = node.output_names;
  MorselMap(
      in.rows.size(),
      [&](size_t begin, size_t end, ResultSet* frag) {
        frag->rows.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
          Row projected;
          projected.reserve(node.projections.size());
          for (const auto& e : node.projections) {
            projected.push_back(e->Eval(in.rows[i]));
          }
          frag->rows.push_back(std::move(projected));
        }
      },
      &out);
  return out;
}

StatusOr<ResultSet> Executor::ExecHashJoin(const PlanNode& node) {
  POLY_ASSIGN_OR_RETURN(ResultSet left, Exec(*node.children[0]));
  POLY_ASSIGN_OR_RETURN(ResultSet right, Exec(*node.children[1]));
  if (node.left_key >= left.num_columns() || node.right_key >= right.num_columns()) {
    return Status::InvalidArgument("join key out of range");
  }
  ResultSet out;
  out.column_names = left.column_names;
  out.column_names.insert(out.column_names.end(), right.column_names.begin(),
                          right.column_names.end());

  // Build side: key -> ascending right-row indices. Parallel build fills
  // per-morsel tables, merged in morsel order so index lists stay sorted.
  JoinIndex build;
  ThreadPool* tp = pool();
  size_t morsel = morsel_rows();
  size_t rn = right.rows.size();
  auto build_range = [&right, &node](size_t begin, size_t end, JoinIndex* idx) {
    for (size_t i = begin; i < end; ++i) {
      const Value& key = right.rows[i][node.right_key];
      if (key.is_null()) continue;
      (*idx)[key].push_back(i);
    }
  };
  if (tp == nullptr || rn <= morsel) {
    build.reserve(rn);
    build_range(0, rn, &build);
  } else {
    size_t num_morsels = (rn + morsel - 1) / morsel;
    std::vector<JoinIndex> locals(num_morsels);
    tp->ParallelFor(
        num_morsels,
        [&](size_t m) {
          size_t begin = m * morsel;
          build_range(begin, std::min(rn, begin + morsel), &locals[m]);
        },
        /*grain=*/1);
    build.reserve(rn);
    for (auto& local : locals) {
      for (auto& [key, idxs] : local) {
        auto& dst = build[key];
        dst.insert(dst.end(), idxs.begin(), idxs.end());
      }
    }
  }

  // Build side is internal state no span sees: charge ~3 words per entry
  // (hash slot + index vector element) before probing fans out.
  POLY_RETURN_IF_ERROR(ChargeInternal(rn * 24));

  // Probe side: morsels of left rows, fragments merged in left-row order.
  MorselMap(
      left.rows.size(),
      [&](size_t begin, size_t end, ResultSet* frag) {
        for (size_t i = begin; i < end; ++i) {
          const Row& lrow = left.rows[i];
          const Value& key = lrow[node.left_key];
          if (key.is_null()) continue;
          auto it = build.find(key);
          if (it == build.end()) continue;
          for (size_t ri : it->second) {
            Row joined = lrow;
            const Row& rrow = right.rows[ri];
            joined.insert(joined.end(), rrow.begin(), rrow.end());
            frag->rows.push_back(std::move(joined));
          }
        }
      },
      &out);
  return out;
}

StatusOr<ResultSet> Executor::ExecAggregate(const PlanNode& node) {
  POLY_ASSIGN_OR_RETURN(ResultSet in, Exec(*node.children[0]));
  ResultSet out;
  for (size_t g : node.group_by) {
    if (g >= in.num_columns()) return Status::InvalidArgument("group key out of range");
    out.column_names.push_back(in.column_names[g]);
  }
  for (const auto& agg : node.aggregates) out.column_names.push_back(agg.output_name);

  size_t num_aggs = node.aggregates.size();
  auto accumulate_range = [&](size_t begin, size_t end, GroupTable* table) {
    Row key;
    for (size_t i = begin; i < end; ++i) {
      const Row& row = in.rows[i];
      key.clear();
      key.reserve(node.group_by.size());
      for (size_t g : node.group_by) key.push_back(row[g]);
      UpdateAggStates(node.aggregates, table->FindOrAdd(key, num_aggs), row);
    }
  };

  GroupTable groups;
  ThreadPool* tp = pool();
  size_t morsel = morsel_rows();
  size_t n = in.rows.size();
  if (tp == nullptr || n <= morsel) {
    accumulate_range(0, n, &groups);
  } else {
    // Thread-local tables per morsel, merged in morsel order so that group
    // emission order (first occurrence over the input) and every aggregate
    // match the serial fold; FP sums follow the morsel reduction tree.
    size_t num_morsels = (n + morsel - 1) / morsel;
    std::vector<GroupTable> locals(num_morsels);
    tp->ParallelFor(
        num_morsels,
        [&](size_t m) {
          size_t begin = m * morsel;
          accumulate_range(begin, std::min(n, begin + morsel), &locals[m]);
        },
        /*grain=*/1);
    for (auto& local : locals) {
      for (size_t g = 0; g < local.keys.size(); ++g) {
        std::vector<AggState>* dst = groups.FindOrAdd(local.keys[g], num_aggs);
        for (size_t a = 0; a < num_aggs; ++a) {
          MergeAggState(&(*dst)[a], local.states[g][a]);
        }
      }
    }
  }

  // Global aggregate over empty input still yields one row of zeros/nulls.
  if (node.group_by.empty() && groups.keys.empty()) {
    groups.FindOrAdd(Row{}, num_aggs);
  }

  // The merged group table (keys + AggStates) is the aggregate's build
  // side; like the join index it never appears in a span's output estimate.
  POLY_RETURN_IF_ERROR(ChargeInternal(
      groups.keys.size() * (node.group_by.size() * 16 + num_aggs * 48)));

  out.rows.reserve(groups.keys.size());
  for (size_t g = 0; g < groups.keys.size(); ++g) {
    Row row = groups.keys[g];
    const std::vector<AggState>& states = groups.states[g];
    for (size_t a = 0; a < num_aggs; ++a) {
      const AggState& st = states[a];
      switch (node.aggregates[a].func) {
        case AggFunc::kCount:
          row.push_back(Value::Int(static_cast<int64_t>(st.count)));
          break;
        case AggFunc::kSum:
          if (!st.has_value) {
            row.push_back(Value::Null());
          } else if (st.all_int) {
            row.push_back(Value::Int(st.sum_int));
          } else {
            row.push_back(Value::Dbl(st.sum));
          }
          break;
        case AggFunc::kMin:
          row.push_back(st.has_value ? st.min : Value::Null());
          break;
        case AggFunc::kMax:
          row.push_back(st.has_value ? st.max : Value::Null());
          break;
        case AggFunc::kAvg:
          row.push_back(st.count ? Value::Dbl(st.sum / static_cast<double>(st.count))
                                 : Value::Null());
          break;
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

StatusOr<ResultSet> Executor::ExecExchange(const PlanNode& node) {
  // Data movement is the cluster's job; a single-node run just forwards the
  // fragment's rows. Keeping the node executable lets one Executor run a
  // whole distributed-shaped plan for oracle tests and coordinator-side
  // residual merges.
  return Exec(*node.children[0]);
}

StatusOr<ResultSet> Executor::ExecPartialAggregate(const PlanNode& node) {
  // Same machinery as kAggregate, but emitting the mergeable slot list
  // (AVG decomposed into SUM + COUNT) instead of finalized values.
  PlanNode partial = node;
  partial.kind = PlanKind::kAggregate;
  partial.aggregates = PartialAggLayout::For(node.aggregates).partial_specs;
  return ExecAggregate(partial);
}

StatusOr<ResultSet> Executor::ExecFinalAggregate(const PlanNode& node) {
  // Input convention: [group cols 0..k-1][partial slots k..k+n-1], the
  // exact shape kPartialAggregate emits (and the shuffle stages preserve).
  PartialAggLayout layout = PartialAggLayout::For(node.aggregates);
  size_t k = node.group_by.size();

  // Merge phase: re-group by the leading key columns, folding each slot
  // with its merge function — COUNT partials merge by summing, SUM/MIN/MAX
  // by themselves.
  PlanNode merge;
  merge.kind = PlanKind::kAggregate;
  merge.children = node.children;
  for (size_t g = 0; g < k; ++g) merge.group_by.push_back(g);
  for (size_t j = 0; j < layout.num_slots(); ++j) {
    AggSpec spec = layout.partial_specs[j];
    spec.input = Expr::Column(k + j);
    if (spec.func == AggFunc::kCount) spec.func = AggFunc::kSum;
    merge.aggregates.push_back(spec);
  }
  POLY_ASSIGN_OR_RETURN(ResultSet merged, ExecAggregate(merge));

  // Finalize the user aggregates out of the merged slots.
  ResultSet out;
  for (size_t g = 0; g < k; ++g) out.column_names.push_back(merged.column_names[g]);
  for (const AggSpec& agg : node.aggregates) out.column_names.push_back(agg.output_name);
  out.rows.reserve(merged.rows.size());
  for (const Row& in : merged.rows) {
    Row row(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(k));
    for (const PartialAggLayout::Entry& entry : layout.entries) {
      const Value& v = in[k + entry.slot];
      switch (entry.func) {
        case AggFunc::kCount:
          // A group with zero counted rows merges to a null SUM; COUNT is 0.
          row.push_back(v.is_null() ? Value::Int(0) : v);
          break;
        case AggFunc::kSum:
        case AggFunc::kMin:
        case AggFunc::kMax:
          row.push_back(v);
          break;
        case AggFunc::kAvg: {
          const Value& cnt = in[k + entry.slot + 1];
          double c = cnt.is_null() ? 0.0 : cnt.NumericValue();
          row.push_back(c > 0 ? Value::Dbl(v.NumericValue() / c) : Value::Null());
          break;
        }
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

StatusOr<ResultSet> Executor::ExecSort(const PlanNode& node) {
  POLY_ASSIGN_OR_RETURN(ResultSet in, Exec(*node.children[0]));
  std::stable_sort(in.rows.begin(), in.rows.end(), [&](const Row& a, const Row& b) {
    for (const auto& key : node.sort_keys) {
      const Value& va = a[key.column];
      const Value& vb = b[key.column];
      if (va < vb) return key.ascending;
      if (vb < va) return !key.ascending;
    }
    return false;
  });
  return in;
}

StatusOr<ResultSet> Executor::ExecLimit(const PlanNode& node) {
  POLY_ASSIGN_OR_RETURN(ResultSet in, Exec(*node.children[0]));
  if (in.rows.size() > node.limit) in.rows.resize(node.limit);
  return in;
}

}  // namespace poly
