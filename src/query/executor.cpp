#include "query/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

namespace poly {

namespace {

/// Hash of a group key / join key.
struct RowKeyHash {
  size_t operator()(const Row& key) const {
    size_t h = 1469598103934665603ULL;
    for (const auto& v : key) h = (h ^ v.Hash()) * 1099511628211ULL;
    return h;
  }
};

struct AggState {
  uint64_t count = 0;
  double sum = 0;
  int64_t sum_int = 0;
  bool all_int = true;
  bool has_value = false;
  Value min, max;
};

/// If the predicate is `($col <op> literal)` over a main-store column, the
/// sorted dictionary turns it into a value-ID range test — no value
/// materialization. Returns false if the shape does not match.
bool TryIdRangePredicate(const ColumnTable& table, const Expr& pred, size_t* col_out,
                         uint64_t* lo_out, uint64_t* hi_out) {
  if (pred.kind() != ExprKind::kCompare) return false;
  const ExprPtr& l = pred.left();
  const ExprPtr& r = pred.right();
  if (!l || !r) return false;
  if (l->kind() != ExprKind::kColumn || r->kind() != ExprKind::kLiteral) return false;
  if (pred.cmp_op() == CmpOp::kNe) return false;
  size_t col = l->column_index();
  if (col >= table.num_columns()) return false;
  const SortedDictionary& dict = table.column(col).main_dictionary();
  const Value& v = r->literal();
  uint64_t lo = 0, hi = dict.size();
  switch (pred.cmp_op()) {
    case CmpOp::kEq:
      lo = dict.LowerBound(v);
      hi = dict.UpperBound(v);
      break;
    case CmpOp::kLt:
      hi = dict.LowerBound(v);
      break;
    case CmpOp::kLe:
      hi = dict.UpperBound(v);
      break;
    case CmpOp::kGt:
      lo = dict.UpperBound(v);
      break;
    case CmpOp::kGe:
      lo = dict.LowerBound(v);
      break;
    case CmpOp::kNe:
      return false;
  }
  *col_out = col;
  *lo_out = lo;
  *hi_out = hi;
  return true;
}

}  // namespace

StatusOr<ResultSet> Executor::Execute(const PlanPtr& plan) {
  if (!plan) return Status::InvalidArgument("null plan");
  return Exec(*plan);
}

StatusOr<ResultSet> Executor::Exec(const PlanNode& node) {
  switch (node.kind) {
    case PlanKind::kScan: return ExecScan(node);
    case PlanKind::kFilter: return ExecFilter(node);
    case PlanKind::kProject: return ExecProject(node);
    case PlanKind::kHashJoin: return ExecHashJoin(node);
    case PlanKind::kAggregate: return ExecAggregate(node);
    case PlanKind::kSort: return ExecSort(node);
    case PlanKind::kLimit: return ExecLimit(node);
  }
  return Status::Internal("unknown plan node");
}

Status Executor::ScanOneTable(const ColumnTable& table, const ExprPtr& predicate,
                              ResultSet* out) {
  ++stats_.partitions_scanned;
  size_t ncols = table.num_columns();

  size_t range_col = 0;
  uint64_t lo = 0, hi = 0;
  bool use_range =
      predicate && TryIdRangePredicate(table, *predicate, &range_col, &lo, &hi);
  if (use_range) ++stats_.id_range_scans;

  uint64_t main_size = table.num_columns() ? table.column(0).main_size() : 0;
  table.ScanVisible(view_, [&](uint64_t r) {
    ++stats_.rows_scanned;
    if (use_range && r < main_size) {
      uint64_t id = table.column(range_col).MainId(r);
      if (id < lo || id >= hi) return;
    } else if (predicate) {
      Row probe = table.GetRow(r);
      if (!predicate->EvalBool(probe)) return;
      ++stats_.rows_materialized;
      out->rows.push_back(std::move(probe));
      return;
    }
    Row row;
    row.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) row.push_back(table.GetValue(r, c));
    ++stats_.rows_materialized;
    out->rows.push_back(std::move(row));
  });
  return Status::OK();
}

StatusOr<ResultSet> Executor::ExecScan(const PlanNode& node) {
  ResultSet out;
  // Partition list from the optimizer (aging-aware pruning, E12); falls back
  // to the single named table.
  std::vector<std::string> tables =
      node.scan_partitions.empty() ? std::vector<std::string>{node.table}
                                   : node.scan_partitions;
  bool first = true;
  for (const auto& name : tables) {
    POLY_ASSIGN_OR_RETURN(ColumnTable * table, db_->GetTable(name));
    if (first) {
      for (size_t c = 0; c < table->schema().num_columns(); ++c) {
        out.column_names.push_back(table->schema().column(c).name);
      }
      first = false;
    }
    POLY_RETURN_IF_ERROR(ScanOneTable(*table, node.scan_predicate, &out));
  }
  return out;
}

StatusOr<ResultSet> Executor::ExecFilter(const PlanNode& node) {
  POLY_ASSIGN_OR_RETURN(ResultSet in, Exec(*node.children[0]));
  ResultSet out;
  out.column_names = in.column_names;
  for (auto& row : in.rows) {
    if (node.predicate->EvalBool(row)) out.rows.push_back(std::move(row));
  }
  return out;
}

StatusOr<ResultSet> Executor::ExecProject(const PlanNode& node) {
  POLY_ASSIGN_OR_RETURN(ResultSet in, Exec(*node.children[0]));
  ResultSet out;
  out.column_names = node.output_names;
  out.rows.reserve(in.rows.size());
  for (const auto& row : in.rows) {
    Row projected;
    projected.reserve(node.projections.size());
    for (const auto& e : node.projections) projected.push_back(e->Eval(row));
    out.rows.push_back(std::move(projected));
  }
  return out;
}

StatusOr<ResultSet> Executor::ExecHashJoin(const PlanNode& node) {
  POLY_ASSIGN_OR_RETURN(ResultSet left, Exec(*node.children[0]));
  POLY_ASSIGN_OR_RETURN(ResultSet right, Exec(*node.children[1]));
  if (node.left_key >= left.num_columns() || node.right_key >= right.num_columns()) {
    return Status::InvalidArgument("join key out of range");
  }
  ResultSet out;
  out.column_names = left.column_names;
  out.column_names.insert(out.column_names.end(), right.column_names.begin(),
                          right.column_names.end());

  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  std::unordered_multimap<Value, size_t, ValueHash> build;
  build.reserve(right.rows.size());
  for (size_t i = 0; i < right.rows.size(); ++i) {
    const Value& key = right.rows[i][node.right_key];
    if (key.is_null()) continue;
    build.emplace(key, i);
  }
  for (const auto& lrow : left.rows) {
    const Value& key = lrow[node.left_key];
    if (key.is_null()) continue;
    auto [begin, end] = build.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      Row joined = lrow;
      const Row& rrow = right.rows[it->second];
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      out.rows.push_back(std::move(joined));
    }
  }
  return out;
}

StatusOr<ResultSet> Executor::ExecAggregate(const PlanNode& node) {
  POLY_ASSIGN_OR_RETURN(ResultSet in, Exec(*node.children[0]));
  ResultSet out;
  for (size_t g : node.group_by) {
    if (g >= in.num_columns()) return Status::InvalidArgument("group key out of range");
    out.column_names.push_back(in.column_names[g]);
  }
  for (const auto& agg : node.aggregates) out.column_names.push_back(agg.output_name);

  std::unordered_map<Row, std::vector<AggState>, RowKeyHash> groups;
  auto update = [&](std::vector<AggState>& states, const Row& row) {
    for (size_t a = 0; a < node.aggregates.size(); ++a) {
      const AggSpec& spec = node.aggregates[a];
      AggState& st = states[a];
      Value v = spec.input ? spec.input->Eval(row) : Value::Int(1);
      if (v.is_null()) continue;
      ++st.count;
      if (v.type() == DataType::kInt64) {
        st.sum_int += v.AsInt();
      } else {
        st.all_int = false;
      }
      st.sum += v.NumericValue();
      if (!st.has_value || v < st.min) st.min = v;
      if (!st.has_value || st.max < v) st.max = v;
      st.has_value = true;
    }
  };

  for (const auto& row : in.rows) {
    Row key;
    key.reserve(node.group_by.size());
    for (size_t g : node.group_by) key.push_back(row[g]);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(std::move(key), std::vector<AggState>(node.aggregates.size()))
               .first;
    }
    update(it->second, row);
  }
  // Global aggregate over empty input still yields one row of zeros/nulls.
  if (node.group_by.empty() && groups.empty()) {
    groups.emplace(Row{}, std::vector<AggState>(node.aggregates.size()));
  }

  for (auto& [key, states] : groups) {
    Row row = key;
    for (size_t a = 0; a < node.aggregates.size(); ++a) {
      const AggState& st = states[a];
      switch (node.aggregates[a].func) {
        case AggFunc::kCount:
          row.push_back(Value::Int(static_cast<int64_t>(st.count)));
          break;
        case AggFunc::kSum:
          if (!st.has_value) {
            row.push_back(Value::Null());
          } else if (st.all_int) {
            row.push_back(Value::Int(st.sum_int));
          } else {
            row.push_back(Value::Dbl(st.sum));
          }
          break;
        case AggFunc::kMin:
          row.push_back(st.has_value ? st.min : Value::Null());
          break;
        case AggFunc::kMax:
          row.push_back(st.has_value ? st.max : Value::Null());
          break;
        case AggFunc::kAvg:
          row.push_back(st.count ? Value::Dbl(st.sum / static_cast<double>(st.count))
                                 : Value::Null());
          break;
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

StatusOr<ResultSet> Executor::ExecSort(const PlanNode& node) {
  POLY_ASSIGN_OR_RETURN(ResultSet in, Exec(*node.children[0]));
  std::stable_sort(in.rows.begin(), in.rows.end(), [&](const Row& a, const Row& b) {
    for (const auto& key : node.sort_keys) {
      const Value& va = a[key.column];
      const Value& vb = b[key.column];
      if (va < vb) return key.ascending;
      if (vb < va) return !key.ascending;
    }
    return false;
  });
  return in;
}

StatusOr<ResultSet> Executor::ExecLimit(const PlanNode& node) {
  POLY_ASSIGN_OR_RETURN(ResultSet in, Exec(*node.children[0]));
  if (in.rows.size() > node.limit) in.rows.resize(node.limit);
  return in;
}

}  // namespace poly
