#ifndef POLY_QUERY_COMPILED_H_
#define POLY_QUERY_COMPILED_H_

#include <vector>

#include "common/exec_options.h"
#include "query/plan.h"
#include "query/result.h"
#include "storage/database.h"
#include "storage/mvcc.h"

namespace poly {

/// Plan-time query "compilation" (§IV-A): the SAP HANA SOE translates SQL
/// into C and compiles it with Clang/LLVM; the effect being measured in
/// [11]/[12] is the elimination of per-row interpretation overhead at
/// operator boundaries. This module reproduces that effect without shipping
/// a compiler: a supported plan shape is lowered at "compile time" into a
/// flat numeric program over primitive column arrays, then executed in one
/// fused loop with direct-indexed (dictionary position) group accumulators.
///
/// Supported shape (the TPC-H Q1/Q6 family used in [11]):
///   Aggregate(group_by: none or one int/string column,
///             aggs: SUM/COUNT/MIN/MAX/AVG over arithmetic of numeric cols)
///     over Scan(table, predicate: conjunction of <col cmp literal>)
class QueryCompiler {
 public:
  /// Runs with the database's default execution options (like Executor).
  QueryCompiler(const Database* db, ReadView view)
      : QueryCompiler(db, view, db->exec_options()) {}
  /// Runs with explicit options. The fused loop is single-threaded by
  /// construction, so only `trace` and `track_access` apply here; internal
  /// scans that must not perturb tiering heat pass track_access = false,
  /// exactly as on the interpreted path.
  QueryCompiler(const Database* db, ReadView view, const ExecOptions& opts)
      : db_(db), view_(view), opts_(opts), trace_(opts.trace) {}

  /// True if the plan lowers to a fused kernel.
  bool CanCompile(const PlanPtr& plan) const;

  /// Compiles and runs; NotImplemented if the shape is unsupported
  /// (callers then fall back to the interpreted Executor).
  StatusOr<ResultSet> Execute(const PlanPtr& plan);

  /// Record per-kernel spans (one FusedScan child per table: versions
  /// visited, rows surviving the predicate, wall/CPU nanos) and attach an
  /// EXPLAIN ANALYZE trace to the result — the compiled counterpart of
  /// ExecOptions::trace.
  void set_trace(bool trace) { trace_ = trace; }

  /// Span tree of the last traced Execute (null when tracing is off).
  const OperatorSpan* trace() const { return trace_root_.get(); }

  const ExecOptions& options() const { return opts_; }

 private:
  const Database* db_;
  ReadView view_;
  ExecOptions opts_;
  bool trace_ = false;
  std::shared_ptr<OperatorSpan> trace_root_;  ///< shared with the ResultSet
};

}  // namespace poly

#endif  // POLY_QUERY_COMPILED_H_
