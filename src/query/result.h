#ifndef POLY_QUERY_RESULT_H_
#define POLY_QUERY_RESULT_H_

#include <string>
#include <vector>

#include "query/trace.h"
#include "types/schema.h"

namespace poly {

/// Materialized query result: named columns plus row data. Intermediate
/// operator results use the same shape.
struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
  /// Per-operator execution trace, set on the top-level result when the
  /// query ran with tracing enabled (ExecOptions::trace or
  /// QueryCompiler::set_trace); null otherwise and on intermediates.
  TracePtr trace;

  size_t num_rows() const { return rows.size(); }
  size_t num_columns() const { return column_names.size(); }

  /// Moves the rows of `frag` onto the end of this result. Fragment column
  /// names are ignored: morsel fragments share the parent's header. This is
  /// the deterministic-merge step of the parallel executor — fragments are
  /// appended in morsel order, so output order never depends on threads.
  void AppendRows(ResultSet&& frag) {
    if (rows.empty()) {
      rows = std::move(frag.rows);
    } else {
      rows.insert(rows.end(), std::make_move_iterator(frag.rows.begin()),
                  std::make_move_iterator(frag.rows.end()));
    }
    frag.rows.clear();
  }

  /// Merges ordered per-morsel fragments into one result set under `names`,
  /// preserving fragment order.
  static ResultSet MergeFragments(std::vector<std::string> names,
                                  std::vector<ResultSet>&& frags) {
    ResultSet out;
    out.column_names = std::move(names);
    size_t total = 0;
    for (const auto& f : frags) total += f.rows.size();
    out.rows.reserve(total);
    for (auto& f : frags) out.AppendRows(std::move(f));
    return out;
  }

  /// Index of a named output column, or -1.
  int ColumnIndex(const std::string& name) const {
    for (size_t i = 0; i < column_names.size(); ++i) {
      if (column_names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  /// EXPLAIN ANALYZE-style annotated plan of the query that produced this
  /// result, or "" when it ran without tracing.
  std::string AnnotatedPlan() const { return trace ? trace->ToString() : ""; }

  /// Tab-separated debug rendering (header + rows), capped at `max_rows`.
  std::string ToString(size_t max_rows = 20) const {
    std::string out;
    for (size_t i = 0; i < column_names.size(); ++i) {
      if (i) out += "\t";
      out += column_names[i];
    }
    out += "\n";
    size_t shown = 0;
    for (const auto& row : rows) {
      if (shown++ >= max_rows) {
        out += "... (" + std::to_string(rows.size()) + " rows total)\n";
        break;
      }
      for (size_t i = 0; i < row.size(); ++i) {
        if (i) out += "\t";
        out += row[i].ToString();
      }
      out += "\n";
    }
    return out;
  }
};

}  // namespace poly

#endif  // POLY_QUERY_RESULT_H_
