#ifndef POLY_QUERY_RESULT_H_
#define POLY_QUERY_RESULT_H_

#include <string>
#include <vector>

#include "types/schema.h"

namespace poly {

/// Materialized query result: named columns plus row data. Intermediate
/// operator results use the same shape.
struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<Row> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_columns() const { return column_names.size(); }

  /// Index of a named output column, or -1.
  int ColumnIndex(const std::string& name) const {
    for (size_t i = 0; i < column_names.size(); ++i) {
      if (column_names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  /// Tab-separated debug rendering (header + rows), capped at `max_rows`.
  std::string ToString(size_t max_rows = 20) const {
    std::string out;
    for (size_t i = 0; i < column_names.size(); ++i) {
      if (i) out += "\t";
      out += column_names[i];
    }
    out += "\n";
    size_t shown = 0;
    for (const auto& row : rows) {
      if (shown++ >= max_rows) {
        out += "... (" + std::to_string(rows.size()) + " rows total)\n";
        break;
      }
      for (size_t i = 0; i < row.size(); ++i) {
        if (i) out += "\t";
        out += row[i].ToString();
      }
      out += "\n";
    }
    return out;
  }
};

}  // namespace poly

#endif  // POLY_QUERY_RESULT_H_
