#include "query/expr.h"

#include <algorithm>

#include "common/string_util.h"

namespace poly {

ExprPtr Expr::Column(size_t index) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kColumn));
  e->column_index_ = index;
  return e;
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kLiteral));
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Compare(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kCompare));
  e->cmp_op_ = op;
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kAnd));
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kOr));
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Not(ExprPtr in) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kNot));
  e->left_ = std::move(in);
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kArithmetic));
  e->arith_op_ = op;
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Like(ExprPtr input, std::string pattern) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kLike));
  e->left_ = std::move(input);
  e->pattern_ = std::move(pattern);
  return e;
}

ExprPtr Expr::In(ExprPtr input, std::vector<Value> candidates) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kIn));
  e->left_ = std::move(input);
  e->candidates_ = std::move(candidates);
  return e;
}

ExprPtr Expr::IsNull(ExprPtr input) {
  auto e = std::shared_ptr<Expr>(new Expr(ExprKind::kIsNull));
  e->left_ = std::move(input);
  return e;
}

bool CompareValues(CmpOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case CmpOp::kEq: return lhs == rhs;
    case CmpOp::kNe: return lhs != rhs;
    case CmpOp::kLt: return lhs < rhs;
    case CmpOp::kLe: return !(rhs < lhs);
    case CmpOp::kGt: return rhs < lhs;
    case CmpOp::kGe: return !(lhs < rhs);
  }
  return false;
}

Value Expr::Eval(const Row& row) const {
  switch (kind_) {
    case ExprKind::kColumn:
      return column_index_ < row.size() ? row[column_index_] : Value::Null();
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kCompare: {
      Value l = left_->Eval(row);
      Value r = right_->Eval(row);
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value::Boolean(CompareValues(cmp_op_, l, r));
    }
    case ExprKind::kAnd: {
      // SQL three-valued logic collapsed to two-valued: null counts false.
      return Value::Boolean(left_->EvalBool(row) && right_->EvalBool(row));
    }
    case ExprKind::kOr:
      return Value::Boolean(left_->EvalBool(row) || right_->EvalBool(row));
    case ExprKind::kNot:
      return Value::Boolean(!left_->EvalBool(row));
    case ExprKind::kArithmetic: {
      Value l = left_->Eval(row);
      Value r = right_->Eval(row);
      if (l.is_null() || r.is_null()) return Value::Null();
      bool both_int = l.type() == DataType::kInt64 && r.type() == DataType::kInt64;
      double a = l.NumericValue(), b = r.NumericValue();
      switch (arith_op_) {
        case ArithOp::kAdd:
          return both_int ? Value::Int(l.AsInt() + r.AsInt()) : Value::Dbl(a + b);
        case ArithOp::kSub:
          return both_int ? Value::Int(l.AsInt() - r.AsInt()) : Value::Dbl(a - b);
        case ArithOp::kMul:
          return both_int ? Value::Int(l.AsInt() * r.AsInt()) : Value::Dbl(a * b);
        case ArithOp::kDiv:
          if (b == 0) return Value::Null();
          return Value::Dbl(a / b);
      }
      return Value::Null();
    }
    case ExprKind::kLike: {
      Value v = left_->Eval(row);
      if (v.type() != DataType::kString && v.type() != DataType::kDocument) {
        return Value::Null();
      }
      return Value::Boolean(LikeMatch(v.AsString(), pattern_));
    }
    case ExprKind::kIn: {
      Value v = left_->Eval(row);
      if (v.is_null()) return Value::Null();
      return Value::Boolean(std::find(candidates_.begin(), candidates_.end(), v) !=
                            candidates_.end());
    }
    case ExprKind::kIsNull:
      return Value::Boolean(left_->Eval(row).is_null());
  }
  return Value::Null();
}

bool Expr::EvalBool(const Row& row) const {
  Value v = Eval(row);
  return v.type() == DataType::kBool && v.AsBool();
}

int Expr::MaxColumnIndex() const {
  int max_idx = kind_ == ExprKind::kColumn ? static_cast<int>(column_index_) : -1;
  if (left_) max_idx = std::max(max_idx, left_->MaxColumnIndex());
  if (right_) max_idx = std::max(max_idx, right_->MaxColumnIndex());
  return max_idx;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumn: return "$" + std::to_string(column_index_);
    case ExprKind::kLiteral: return literal_.ToString();
    case ExprKind::kCompare: {
      static const char* names[] = {"=", "!=", "<", "<=", ">", ">="};
      return "(" + left_->ToString() + " " + names[static_cast<int>(cmp_op_)] + " " +
             right_->ToString() + ")";
    }
    case ExprKind::kAnd: return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
    case ExprKind::kOr: return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
    case ExprKind::kNot: return "NOT " + left_->ToString();
    case ExprKind::kArithmetic: {
      static const char* names[] = {"+", "-", "*", "/"};
      return "(" + left_->ToString() + " " + names[static_cast<int>(arith_op_)] + " " +
             right_->ToString() + ")";
    }
    case ExprKind::kLike: return left_->ToString() + " LIKE '" + pattern_ + "'";
    case ExprKind::kIn: {
      std::string out = left_->ToString() + " IN (";
      for (size_t i = 0; i < candidates_.size(); ++i) {
        if (i) out += ", ";
        out += candidates_[i].ToString();
      }
      return out + ")";
    }
    case ExprKind::kIsNull: return left_->ToString() + " IS NULL";
  }
  return "?";
}

}  // namespace poly
