#ifndef POLY_QUERY_PLAN_H_
#define POLY_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "query/expr.h"

namespace poly {

/// Logical/physical plan node kinds. Plans are trees built by PlanBuilder,
/// rewritten by the Optimizer, and executed by the Executor (interpreted)
/// or QueryCompiler (specialized kernels, §IV-A).
enum class PlanKind {
  kScan,       ///< table scan with optional pushed-down predicate
  kFilter,
  kProject,
  kHashJoin,   ///< equi-join, builds hash table on the right input
  kAggregate,  ///< optional group-by + aggregate functions
  kSort,
  kLimit,
};

enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

/// One aggregate output: func over an input expression.
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  ExprPtr input;  ///< may be null for COUNT(*)
  std::string output_name;
};

/// One sort key over the node's input columns.
struct SortKey {
  size_t column = 0;
  bool ascending = true;
};

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// Plan node. A plain struct (no behaviour): the executor interprets it.
struct PlanNode {
  PlanKind kind = PlanKind::kScan;
  std::vector<PlanPtr> children;

  // kScan
  std::string table;
  ExprPtr scan_predicate;                   ///< pushed down; may be null
  std::vector<std::string> scan_partitions; ///< pruned partition list (aging)

  // kFilter
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> projections;
  std::vector<std::string> output_names;

  // kHashJoin
  size_t left_key = 0;
  size_t right_key = 0;

  // kAggregate
  std::vector<size_t> group_by;
  std::vector<AggSpec> aggregates;

  // kSort
  std::vector<SortKey> sort_keys;

  // kLimit
  size_t limit = 0;

  std::string ToString(int indent = 0) const;
};

/// Fluent builder for plan trees.
class PlanBuilder {
 public:
  static PlanBuilder Scan(std::string table);
  /// Wraps an existing subtree (e.g. for joins).
  static PlanBuilder From(PlanPtr node);

  PlanBuilder Filter(ExprPtr predicate) &&;
  PlanBuilder Project(std::vector<ExprPtr> exprs, std::vector<std::string> names) &&;
  PlanBuilder HashJoin(PlanPtr right, size_t left_key, size_t right_key) &&;
  PlanBuilder Aggregate(std::vector<size_t> group_by, std::vector<AggSpec> aggs) &&;
  PlanBuilder Sort(std::vector<SortKey> keys) &&;
  PlanBuilder Limit(size_t n) &&;

  PlanPtr Build() && { return std::move(root_); }

 private:
  PlanPtr root_;
};

}  // namespace poly

#endif  // POLY_QUERY_PLAN_H_
