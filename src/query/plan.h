#ifndef POLY_QUERY_PLAN_H_
#define POLY_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "query/expr.h"

namespace poly {

/// Logical/physical plan node kinds. Plans are trees built by PlanBuilder,
/// rewritten by the Optimizer, and executed by the Executor (interpreted)
/// or QueryCompiler (specialized kernels, §IV-A).
enum class PlanKind {
  kScan,       ///< table scan with optional pushed-down predicate
  kFilter,
  kProject,
  kHashJoin,   ///< equi-join, builds hash table on the right input
  kAggregate,  ///< optional group-by + aggregate functions
  kSort,
  kLimit,
  // Exchange-aware nodes of the distributed plan IR (DESIGN.md §14). A
  // single-node Executor runs them too: kExchange is a pass-through (data
  // movement is the cluster's job), and the partial/final pair reproduces
  // the distributed two-phase aggregation on one machine — which is exactly
  // what the coordinator does when it merges shuffled partials.
  kExchange,          ///< fragment boundary: output leaves the fragment
  kPartialAggregate,  ///< per-node phase: mergeable partial slots
  kFinalAggregate,    ///< merge phase over [group cols][partial slots]
};

/// How an exchange moves its fragment's output (DESIGN.md §14.2).
enum class ExchangeMode {
  kGather,       ///< every producer sends to the coordinator
  kBroadcast,    ///< every producer sends everything to every consumer
  kRepartition,  ///< rows routed by hash of the exchange keys
};

enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

/// One aggregate output: func over an input expression.
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  ExprPtr input;  ///< may be null for COUNT(*)
  std::string output_name;
};

/// One sort key over the node's input columns.
struct SortKey {
  size_t column = 0;
  bool ascending = true;
};

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// Plan node. A plain struct (no behaviour): the executor interprets it.
struct PlanNode {
  PlanKind kind = PlanKind::kScan;
  std::vector<PlanPtr> children;

  // kScan
  std::string table;
  ExprPtr scan_predicate;                   ///< pushed down; may be null
  std::vector<std::string> scan_partitions; ///< pruned partition list (aging)

  // kFilter
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> projections;
  std::vector<std::string> output_names;

  // kHashJoin
  size_t left_key = 0;
  size_t right_key = 0;

  // kAggregate / kPartialAggregate / kFinalAggregate. The partial/final
  // pair carries the USER aggregate list; both derive the slot layout with
  // PartialAggLayout::For, so producer and merger can never disagree on it.
  std::vector<size_t> group_by;
  std::vector<AggSpec> aggregates;

  // kExchange
  ExchangeMode exchange_mode = ExchangeMode::kGather;
  std::vector<size_t> exchange_keys;  ///< repartition hash columns

  // kSort
  std::vector<SortKey> sort_keys;

  // kLimit
  size_t limit = 0;

  std::string ToString(int indent = 0) const;
};

/// Fluent builder for plan trees.
class PlanBuilder {
 public:
  static PlanBuilder Scan(std::string table);
  /// Wraps an existing subtree (e.g. for joins).
  static PlanBuilder From(PlanPtr node);

  PlanBuilder Filter(ExprPtr predicate) &&;
  PlanBuilder Project(std::vector<ExprPtr> exprs, std::vector<std::string> names) &&;
  PlanBuilder HashJoin(PlanPtr right, size_t left_key, size_t right_key) &&;
  PlanBuilder Aggregate(std::vector<size_t> group_by, std::vector<AggSpec> aggs) &&;
  PlanBuilder PartialAggregate(std::vector<size_t> group_by,
                               std::vector<AggSpec> aggs) &&;
  PlanBuilder FinalAggregate(std::vector<size_t> group_by,
                             std::vector<AggSpec> aggs) &&;
  PlanBuilder Exchange(ExchangeMode mode, std::vector<size_t> keys = {}) &&;
  PlanBuilder Sort(std::vector<SortKey> keys) &&;
  PlanBuilder Limit(size_t n) &&;

  PlanPtr Build() && { return std::move(root_); }

 private:
  PlanPtr root_;
};

/// How a user aggregate list decomposes into mergeable partial slots:
/// AVG becomes a SUM slot plus a COUNT slot; everything else maps 1:1.
/// A kPartialAggregate emits [group cols][slot 0..n-1]; the matching
/// kFinalAggregate merges slots (COUNT by summing, SUM/MIN/MAX by
/// themselves) and finalizes AVG as merged-sum / merged-count.
struct PartialAggLayout {
  struct Entry {
    AggFunc func = AggFunc::kCount;  ///< the user aggregate
    size_t slot = 0;                 ///< first partial slot (AVG owns slot+1 too)
  };
  std::vector<Entry> entries;          ///< one per user aggregate
  std::vector<AggSpec> partial_specs;  ///< the per-slot partial aggregates

  static PartialAggLayout For(const std::vector<AggSpec>& user_aggs);
  size_t num_slots() const { return partial_specs.size(); }
};

/// Deep copy of `plan` with every scan of table `from` renamed to `to`.
/// Fragment instantiation: the distributed planner emits logical table
/// names; the cluster patches in the per-task partition table. Expressions
/// are shared (immutable), plan nodes are copied.
PlanPtr RewriteScanTables(const PlanPtr& plan, const std::string& from,
                          const std::string& to);

}  // namespace poly

#endif  // POLY_QUERY_PLAN_H_
