#ifndef POLY_QUERY_EXPR_H_
#define POLY_QUERY_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/schema.h"

namespace poly {

/// Comparison operators for predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Expression node kinds.
enum class ExprKind {
  kColumn,      ///< reference to input column by position
  kLiteral,     ///< constant Value
  kCompare,     ///< lhs <op> rhs -> bool
  kAnd,
  kOr,
  kNot,
  kArithmetic,  ///< + - * / on numerics
  kLike,        ///< string LIKE pattern
  kIn,          ///< lhs IN (literal list)
  kIsNull,
};

enum class ArithOp { kAdd, kSub, kMul, kDiv };

/// Immutable expression tree evaluated against a Row. Built with the
/// factory helpers below; shared_ptr nodes so plans can share subtrees.
class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  /// Factories.
  static ExprPtr Column(size_t index);
  static ExprPtr Literal(Value v);
  static ExprPtr Compare(CmpOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr e);
  static ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Like(ExprPtr input, std::string pattern);
  static ExprPtr In(ExprPtr input, std::vector<Value> candidates);
  static ExprPtr IsNull(ExprPtr input);

  /// Evaluates against a materialized row.
  Value Eval(const Row& row) const;
  /// Convenience: Eval and coerce to bool (null/non-bool -> false).
  bool EvalBool(const Row& row) const;

  ExprKind kind() const { return kind_; }
  size_t column_index() const { return column_index_; }
  const Value& literal() const { return literal_; }
  CmpOp cmp_op() const { return cmp_op_; }
  ArithOp arith_op() const { return arith_op_; }
  const std::string& pattern() const { return pattern_; }
  const std::vector<Value>& candidates() const { return candidates_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  /// Highest column index referenced, or -1 if none (for binding checks).
  int MaxColumnIndex() const;

  std::string ToString() const;

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  ExprKind kind_;
  size_t column_index_ = 0;
  Value literal_;
  CmpOp cmp_op_ = CmpOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  std::string pattern_;
  std::vector<Value> candidates_;
  ExprPtr left_;
  ExprPtr right_;
};

/// True when `cmp` holds between two values (uses Value's total order with
/// numeric cross-type comparison).
bool CompareValues(CmpOp op, const Value& lhs, const Value& rhs);

}  // namespace poly

#endif  // POLY_QUERY_EXPR_H_
