#include "query/compiled.h"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "query/executor.h"  // TryIdRangePredicate, for access classification
#include "resource/memory_budget.h"

namespace poly {

namespace {

/// Flat postfix program over doubles — the lowered form of an aggregate
/// input expression ("the generated C").
enum class OpCode : uint8_t { kLoadCol, kConst, kAdd, kSub, kMul, kDiv };

struct Instr {
  OpCode op;
  int col_slot = 0;
  double constant = 0;
};

/// Compiled predicate atom: column <op> constant.
struct RangeCheck {
  int col_slot;
  CmpOp op;
  double constant;
};

/// Registers the column in the slot map, returning its slot.
int SlotFor(size_t col, std::unordered_map<size_t, int>* slots) {
  auto it = slots->find(col);
  if (it != slots->end()) return it->second;
  int slot = static_cast<int>(slots->size());
  slots->emplace(col, slot);
  return slot;
}

bool IsNumericLiteral(const Expr& e) {
  if (e.kind() != ExprKind::kLiteral) return false;
  DataType t = e.literal().type();
  return t == DataType::kInt64 || t == DataType::kDouble || t == DataType::kBool ||
         t == DataType::kTimestamp;
}

/// Lowers an arithmetic expression to postfix; false if unsupported.
bool CompileArith(const ExprPtr& e, std::unordered_map<size_t, int>* slots,
                  std::vector<Instr>* prog) {
  if (!e) return false;
  switch (e->kind()) {
    case ExprKind::kColumn:
      prog->push_back({OpCode::kLoadCol, SlotFor(e->column_index(), slots), 0});
      return true;
    case ExprKind::kLiteral:
      if (!IsNumericLiteral(*e)) return false;
      prog->push_back({OpCode::kConst, 0, e->literal().NumericValue()});
      return true;
    case ExprKind::kArithmetic: {
      if (!CompileArith(e->left(), slots, prog)) return false;
      if (!CompileArith(e->right(), slots, prog)) return false;
      switch (e->arith_op()) {
        case ArithOp::kAdd: prog->push_back({OpCode::kAdd, 0, 0}); break;
        case ArithOp::kSub: prog->push_back({OpCode::kSub, 0, 0}); break;
        case ArithOp::kMul: prog->push_back({OpCode::kMul, 0, 0}); break;
        case ArithOp::kDiv: prog->push_back({OpCode::kDiv, 0, 0}); break;
      }
      return true;
    }
    default:
      return false;
  }
}

/// Lowers a conjunction of `col cmp literal` atoms; false if unsupported.
bool CompilePredicate(const ExprPtr& e, std::unordered_map<size_t, int>* slots,
                      std::vector<RangeCheck>* checks) {
  if (!e) return true;  // no predicate
  if (e->kind() == ExprKind::kAnd) {
    return CompilePredicate(e->left(), slots, checks) &&
           CompilePredicate(e->right(), slots, checks);
  }
  if (e->kind() != ExprKind::kCompare) return false;
  const ExprPtr& l = e->left();
  const ExprPtr& r = e->right();
  if (!l || !r) return false;
  if (l->kind() != ExprKind::kColumn || !IsNumericLiteral(*r)) return false;
  checks->push_back(
      {SlotFor(l->column_index(), slots), e->cmp_op(), r->literal().NumericValue()});
  return true;
}

bool CheckPasses(const RangeCheck& c, double v) {
  switch (c.op) {
    case CmpOp::kEq: return v == c.constant;
    case CmpOp::kNe: return v != c.constant;
    case CmpOp::kLt: return v < c.constant;
    case CmpOp::kLe: return v <= c.constant;
    case CmpOp::kGt: return v > c.constant;
    case CmpOp::kGe: return v >= c.constant;
  }
  return false;
}

double RunProgram(const std::vector<Instr>& prog, const double* const* cols, uint64_t r) {
  double stack[16];
  int sp = 0;
  for (const Instr& ins : prog) {
    switch (ins.op) {
      case OpCode::kLoadCol: stack[sp++] = cols[ins.col_slot][r]; break;
      case OpCode::kConst: stack[sp++] = ins.constant; break;
      case OpCode::kAdd: --sp; stack[sp - 1] += stack[sp]; break;
      case OpCode::kSub: --sp; stack[sp - 1] -= stack[sp]; break;
      case OpCode::kMul: --sp; stack[sp - 1] *= stack[sp]; break;
      case OpCode::kDiv: --sp; stack[sp - 1] /= stack[sp]; break;
    }
  }
  return stack[0];
}

struct CompiledAgg {
  AggFunc func;
  std::vector<Instr> prog;  ///< empty for COUNT(*)
};

struct GroupAccum {
  uint64_t count = 0;
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

struct KernelSpec {
  bool has_group = false;
  size_t group_col = 0;
  std::unordered_map<size_t, int> slots;  // table column -> slot
  std::vector<RangeCheck> checks;
  std::vector<CompiledAgg> aggs;
};

bool LowerPlan(const PlanPtr& plan, KernelSpec* spec) {
  if (!plan || plan->kind != PlanKind::kAggregate) return false;
  if (plan->children.size() != 1 || plan->children[0]->kind != PlanKind::kScan) {
    return false;
  }
  if (plan->group_by.size() > 1) return false;
  // An Aggregate with no aggregate functions is a DISTINCT dedup wrapper
  // (sql_parser.cpp); the fused kernels only lower real aggregations.
  if (plan->aggregates.empty()) return false;
  spec->has_group = !plan->group_by.empty();
  if (spec->has_group) spec->group_col = plan->group_by[0];
  const PlanNode& scan = *plan->children[0];
  if (!CompilePredicate(scan.scan_predicate, &spec->slots, &spec->checks)) return false;
  for (const AggSpec& agg : plan->aggregates) {
    CompiledAgg ca;
    ca.func = agg.func;
    if (agg.input) {
      if (!CompileArith(agg.input, &spec->slots, &ca.prog)) return false;
      if (ca.prog.size() > 15) return false;  // stack bound
    }
    spec->aggs.push_back(std::move(ca));
  }
  return true;
}

bool NumericColumnType(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble || t == DataType::kBool ||
         t == DataType::kTimestamp;
}

}  // namespace

bool QueryCompiler::CanCompile(const PlanPtr& plan) const {
  KernelSpec spec;
  if (!LowerPlan(plan, &spec)) return false;
  // All referenced value columns must be numeric in the scanned table(s).
  const PlanNode& scan = *plan->children[0];
  std::vector<std::string> tables = scan.scan_partitions.empty()
                                        ? std::vector<std::string>{scan.table}
                                        : scan.scan_partitions;
  for (const auto& name : tables) {
    auto table = db_->GetTable(name);
    if (!table.ok()) return false;
    for (const auto& [col, _] : spec.slots) {
      if (col >= (*table)->schema().num_columns()) return false;
      if (!NumericColumnType((*table)->schema().column(col).type)) return false;
    }
    if (spec.has_group && spec.group_col >= (*table)->schema().num_columns()) {
      return false;
    }
  }
  return true;
}

StatusOr<ResultSet> QueryCompiler::Execute(const PlanPtr& plan) {
  KernelSpec spec;
  if (!LowerPlan(plan, &spec) || !CanCompile(plan)) {
    return Status::NotImplemented("plan shape not supported by compiled kernels");
  }
  trace_root_.reset();
  OperatorSpan root;
  uint64_t root_wall0 = 0, root_cpu0 = 0;
  if (trace_) {
    root.label = spec.has_group ? "CompiledGroupAggregate" : "CompiledAggregate";
    root_wall0 = TraceWallNanos();
    root_cpu0 = TraceThreadCpuNanos();
  }
  const PlanNode& scan = *plan->children[0];
  std::vector<std::string> tables = scan.scan_partitions.empty()
                                        ? std::vector<std::string>{scan.table}
                                        : scan.scan_partitions;

  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  // Global group table: group value -> slot.
  std::unordered_map<Value, size_t, ValueHash> group_slots;
  std::vector<Value> group_values;
  std::vector<std::vector<GroupAccum>> accums;  // [group][agg]
  auto group_slot_for = [&](const Value& v) -> size_t {
    auto it = group_slots.find(v);
    if (it != group_slots.end()) return it->second;
    size_t slot = group_values.size();
    group_slots.emplace(v, slot);
    group_values.push_back(v);
    accums.emplace_back(spec.aggs.size());
    return slot;
  };
  if (!spec.has_group) {
    group_slot_for(Value::Null());  // single global group
  }

  std::string group_col_name;

  for (const auto& name : tables) {
    // Pin + demand-page exactly like the interpreted executor's ExecScan:
    // the handle survives a concurrent demotion, and a demoted partition is
    // promoted back through the tier resolver instead of failing.
    auto pinned = db_->PinTable(name);
    if (!pinned.ok() && pinned.status().IsNotFound()) {
      if (TierResolver* resolver = db_->tier_resolver()) {
        auto resolved = resolver->ResolveMissing(name);
        if (resolved.ok()) pinned = std::move(resolved);
      }
    }
    POLY_ASSIGN_OR_RETURN(std::shared_ptr<ColumnTable> pinned_table, std::move(pinned));
    ColumnTable* table = pinned_table.get();
    // ONE unified guard for the whole kernel (DESIGN.md §12.5): a single
    // epoch pin covering stamps and the value snapshots of every column.
    // The fused loop below reads two stamps per row, and the guard bounds n
    // to the published watermark so concurrent writers never hand us a
    // half-written row or an unpublished delta value.
    ColumnTable::ReadGuard guard(table);
    uint64_t n = guard.size();
    uint64_t kernel_wall0 = 0, kernel_cpu0 = 0;
    if (trace_) {
      kernel_wall0 = TraceWallNanos();
      kernel_cpu0 = TraceThreadCpuNanos();
    }
    uint64_t rows_kept = 0;
    if (spec.has_group) group_col_name = guard.schema().column(spec.group_col).name;

    // "Code generation" setup: decode every referenced column to a primitive
    // array once, via its dictionary (decode cost is part of the kernel).
    std::vector<std::vector<double>> col_data(spec.slots.size());
    std::vector<const double*> col_ptrs(spec.slots.size(), nullptr);
    for (const auto& [col, slot] : spec.slots) {
      const Column::Reader& c = guard.col(col);
      // Dictionary -> double lookup tables.
      std::vector<double> main_lut(c.main_dictionary().size());
      for (uint64_t i = 0; i < main_lut.size(); ++i) {
        main_lut[i] = c.main_dictionary().At(i).NumericValue();
      }
      std::vector<double> delta_lut(c.delta_dict_size());
      for (uint64_t i = 0; i < delta_lut.size(); ++i) {
        delta_lut[i] = c.DeltaDictValue(i).NumericValue();
      }
      std::vector<double>& data = col_data[slot];
      data.resize(n);
      uint64_t main_n = c.main_size();
      for (uint64_t r = 0; r < main_n; ++r) data[r] = main_lut[c.MainId(r)];
      for (uint64_t r = main_n; r < n; ++r) data[r] = delta_lut[c.DeltaId(r - main_n)];
      col_ptrs[slot] = data.data();
    }

    // Group slots per dictionary entry (computed once per distinct value,
    // not once per row — the dictionary-position trick).
    std::vector<uint32_t> main_group_lut, delta_group_lut;
    uint64_t group_main_n = 0;
    if (spec.has_group) {
      const Column::Reader& g = guard.col(spec.group_col);
      group_main_n = g.main_size();
      main_group_lut.resize(g.main_dictionary().size());
      for (uint64_t i = 0; i < main_group_lut.size(); ++i) {
        main_group_lut[i] =
            static_cast<uint32_t>(group_slot_for(g.main_dictionary().At(i)));
      }
      delta_group_lut.resize(g.delta_dict_size());
      for (uint64_t i = 0; i < delta_group_lut.size(); ++i) {
        delta_group_lut[i] =
            static_cast<uint32_t>(group_slot_for(g.DeltaDictValue(i)));
      }
    }

    const Column::Reader* group_col =
        spec.has_group ? &guard.col(spec.group_col) : nullptr;
    const double* const* cols = col_ptrs.data();

    // The fused loop ("the compiled query").
    for (uint64_t r = 0; r < n; ++r) {
      if (!view_.RowVisible(guard.cts(r), guard.dts(r))) continue;
      bool pass = true;
      for (const RangeCheck& c : spec.checks) {
        if (!CheckPasses(c, cols[c.col_slot][r])) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      ++rows_kept;
      size_t slot = 0;
      if (spec.has_group) {
        slot = r < group_main_n ? main_group_lut[group_col->MainId(r)]
                                : delta_group_lut[group_col->DeltaId(r - group_main_n)];
      }
      std::vector<GroupAccum>& acc = accums[slot];
      for (size_t a = 0; a < spec.aggs.size(); ++a) {
        GroupAccum& g = acc[a];
        if (spec.aggs[a].prog.empty()) {  // COUNT(*)
          ++g.count;
          continue;
        }
        double v = RunProgram(spec.aggs[a].prog, cols, r);
        ++g.count;
        g.sum += v;
        if (v < g.min) g.min = v;
        if (v > g.max) g.max = v;
      }
    }

    if (trace_) {
      OperatorSpan kernel;
      kernel.label = "FusedScan(" + name + ")";
      kernel.rows_in = n;           // versions the fused loop visited
      kernel.rows_out = rows_kept;  // rows surviving visibility + predicate
      kernel.bytes_out = rows_kept * spec.slots.size() * 8;
      kernel.wall_nanos = TraceWallNanos() - kernel_wall0;
      kernel.cpu_nanos = TraceThreadCpuNanos() - kernel_cpu0;
      root.children.push_back(std::move(kernel));
    }

    if (opts_.track_access) {
      if (AccessObserver* observer = db_->access_observer()) {
        AccessEvent event;
        event.partition = name;
        event.rows_scanned = n;
        event.bytes = rows_kept * spec.slots.size() * 8;
        // The fused loop always sweeps every row, but classify the access
        // the way the interpreted scan would have served it, so compiled
        // point reads keep their OLTP heat weighting.
        size_t range_col = 0;
        uint64_t lo = 0, hi = 0;
        event.point_read =
            scan.scan_predicate != nullptr &&
            TryIdRangePredicate(guard, *scan.scan_predicate, &range_col, &lo, &hi);
        // Exactly the columns the fused kernel touched: its materialized
        // slots plus the group-by column it decodes directly.
        for (const auto& [col, _] : spec.slots) {
          event.columns.push_back(guard.schema().column(col).name);
        }
        if (spec.has_group && spec.slots.find(spec.group_col) == spec.slots.end()) {
          event.columns.push_back(guard.schema().column(spec.group_col).name);
        }
        observer->OnAccess(event);
      }
    }
  }

  // Accumulator state is the compiled path's whole footprint; one
  // query-scoped reservation enforces the budget and hands it back when
  // this function returns, success or error.
  resource::Reservation reservation(opts_.budget);
  POLY_RETURN_IF_ERROR(reservation.Grow(
      group_values.size() * (16 + spec.aggs.size() * sizeof(GroupAccum))));

  // Emit results in the interpreted executor's column order.
  ResultSet out;
  if (spec.has_group) out.column_names.push_back(group_col_name);
  for (const auto& agg : plan->aggregates) out.column_names.push_back(agg.output_name);
  for (size_t slot = 0; slot < group_values.size(); ++slot) {
    // Groups created from dictionary entries may have seen no rows at all;
    // skip them (the interpreted executor never emits empty groups).
    bool touched = false;
    for (const auto& g : accums[slot]) touched |= g.count > 0;
    if (spec.has_group && !touched) continue;
    Row row;
    if (spec.has_group) row.push_back(group_values[slot]);
    for (size_t a = 0; a < spec.aggs.size(); ++a) {
      const GroupAccum& g = accums[slot][a];
      switch (spec.aggs[a].func) {
        case AggFunc::kCount:
          row.push_back(Value::Int(static_cast<int64_t>(g.count)));
          break;
        case AggFunc::kSum:
          row.push_back(g.count ? Value::Dbl(g.sum) : Value::Null());
          break;
        case AggFunc::kMin:
          row.push_back(g.count ? Value::Dbl(g.min) : Value::Null());
          break;
        case AggFunc::kMax:
          row.push_back(g.count ? Value::Dbl(g.max) : Value::Null());
          break;
        case AggFunc::kAvg:
          row.push_back(g.count ? Value::Dbl(g.sum / static_cast<double>(g.count))
                                : Value::Null());
          break;
      }
    }
    out.rows.push_back(std::move(row));
  }
  if (trace_) {
    root.rows_out = out.rows.size();
    for (const OperatorSpan& c : root.children) root.rows_in += c.rows_out;
    root.bytes_out = root.rows_out * out.column_names.size() * 8;
    root.wall_nanos = TraceWallNanos() - root_wall0;
    root.cpu_nanos = TraceThreadCpuNanos() - root_cpu0;
    trace_root_ = std::make_shared<OperatorSpan>(std::move(root));
    out.trace = trace_root_;
  }
  return out;
}

}  // namespace poly
