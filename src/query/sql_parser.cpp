#include "query/sql_parser.h"

#include <cctype>
#include <unordered_map>

#include "common/string_util.h"

namespace poly {

namespace {

// ---------------------------------------------------------------- lexer --

struct Token {
  enum class Kind { kIdent, kInt, kDouble, kString, kSymbol, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;     // ident (uppercased copy in upper), symbol, string body
  std::string upper;    // uppercase ident for keyword checks
  int64_t int_value = 0;
  double dbl_value = 0;
};

StatusOr<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < sql.size() && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                                sql[i] == '_' || sql[i] == '$' || sql[i] == '#')) {
        ++i;
      }
      tok.kind = Token::Kind::kIdent;
      tok.text = sql.substr(start, i - start);
      tok.upper = tok.text;
      for (char& ch : tok.upper) ch = static_cast<char>(std::toupper(ch));
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_double = false;
      while (i < sql.size() && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                                sql[i] == '.')) {
        if (sql[i] == '.') is_double = true;
        ++i;
      }
      std::string num = sql.substr(start, i - start);
      if (is_double) {
        tok.kind = Token::Kind::kDouble;
        tok.dbl_value = std::stod(num);
      } else {
        tok.kind = Token::Kind::kInt;
        tok.int_value = std::stoll(num);
      }
    } else if (c == '\'') {
      ++i;
      std::string body;
      while (i < sql.size() && sql[i] != '\'') {
        body += sql[i++];
      }
      if (i >= sql.size()) return Status::InvalidArgument("unterminated string literal");
      ++i;
      tok.kind = Token::Kind::kString;
      tok.text = std::move(body);
    } else {
      // Multi-char operators first.
      static const char* kTwoChar[] = {"<=", ">=", "!=", "<>"};
      tok.kind = Token::Kind::kSymbol;
      tok.text = std::string(1, c);
      for (const char* op : kTwoChar) {
        if (sql.compare(i, 2, op) == 0) {
          tok.text = op;
          break;
        }
      }
      i += tok.text.size();
    }
    tokens.push_back(std::move(tok));
  }
  tokens.push_back(Token{});  // kEnd sentinel
  return tokens;
}

// --------------------------------------------------------------- parser --

struct Binding {
  std::string table;   // table (qualifier) the column came from
  std::string column;
  size_t index;        // position in the combined input row
};

struct SelectItem {
  bool star = false;
  bool is_aggregate = false;
  AggFunc agg_func = AggFunc::kCount;
  ExprPtr expr;        // null for COUNT(*) / star
  std::string name;    // output name
};

struct ParsedOrderKey {
  std::string column;
  bool ascending = true;
};

const std::unordered_map<std::string, AggFunc>& AggFuncs() {
  static const std::unordered_map<std::string, AggFunc> kAggs = {
      {"COUNT", AggFunc::kCount}, {"SUM", AggFunc::kSum}, {"AVG", AggFunc::kAvg},
      {"MIN", AggFunc::kMin},     {"MAX", AggFunc::kMax}};
  return kAggs;
}

class ParserImpl {
 public:
  ParserImpl(const Database* db, std::vector<Token> tokens)
      : db_(db), tokens_(std::move(tokens)) {}

  StatusOr<PlanPtr> ParseSelect();

 private:
  const Token& Peek(int ahead = 0) const {
    size_t p = pos_ + static_cast<size_t>(ahead);
    return p < tokens_.size() ? tokens_[p] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtKeyword(const char* kw) const {
    return Peek().kind == Token::Kind::kIdent && Peek().upper == kw;
  }
  bool ConsumeKeyword(const char* kw) {
    if (!AtKeyword(kw)) return false;
    Next();
    return true;
  }
  bool ConsumeSymbol(const char* sym) {
    if (Peek().kind == Token::Kind::kSymbol && Peek().text == sym) {
      Next();
      return true;
    }
    return false;
  }
  Status Expect(const char* what) {
    return Status::InvalidArgument("SQL parse error: expected " + std::string(what) +
                                   " near '" + Peek().text + "'");
  }

  Status BindTable(const std::string& name);
  StatusOr<size_t> ResolveColumn(const std::string& qualifier, const std::string& name);
  StatusOr<ExprPtr> ParseColumnRef();

  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }
  StatusOr<ExprPtr> ParseOr();
  StatusOr<ExprPtr> ParseAnd();
  StatusOr<ExprPtr> ParseNot();
  StatusOr<ExprPtr> ParseComparison();
  StatusOr<ExprPtr> ParseAdditive();
  StatusOr<ExprPtr> ParseMultiplicative();
  StatusOr<ExprPtr> ParsePrimary();
  StatusOr<Value> ParseLiteralValue();

  StatusOr<SelectItem> ParseSelectItem();

  /// HAVING resolution (active while in_having_): aggregate calls and
  /// aggregate-output column references instead of base-table columns.
  StatusOr<ExprPtr> ParseHavingAggregate();
  StatusOr<ExprPtr> ParseHavingColumnRef();

  const Database* db_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::vector<Binding> bindings_;

  /// Context for parsing the deferred HAVING clause against the aggregate
  /// output row ([group cols..., agg slots...]). having_slots_ maps
  /// unqualified names (group column names, select-item aliases) to slots;
  /// having_aggs_ points at the aggregate list so unmatched aggregate calls
  /// can append hidden slots.
  bool in_having_ = false;
  const std::vector<size_t>* having_group_by_ = nullptr;
  std::vector<AggSpec>* having_aggs_ = nullptr;
  std::unordered_map<std::string, size_t> having_slots_;
  size_t having_hidden_ = 0;
};

Status ParserImpl::BindTable(const std::string& name) {
  POLY_ASSIGN_OR_RETURN(ColumnTable * table, db_->GetTable(name));
  size_t base = bindings_.size();
  for (size_t c = 0; c < table->schema().num_columns(); ++c) {
    bindings_.push_back({name, table->schema().column(c).name, base + c});
  }
  return Status::OK();
}

StatusOr<size_t> ParserImpl::ResolveColumn(const std::string& qualifier,
                                           const std::string& name) {
  int found = -1;
  for (const Binding& b : bindings_) {
    if (b.column != name) continue;
    if (!qualifier.empty() && b.table != qualifier) continue;
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column '" + name +
                                     "' (qualify as <table>.<column>)");
    }
    found = static_cast<int>(b.index);
  }
  if (found < 0) {
    return Status::NotFound("unknown column '" +
                            (qualifier.empty() ? name : qualifier + "." + name) + "'");
  }
  return static_cast<size_t>(found);
}

StatusOr<ExprPtr> ParserImpl::ParseColumnRef() {
  if (Peek().kind != Token::Kind::kIdent) return Expect("column name");
  std::string first = Next().text;
  std::string qualifier, column;
  if (ConsumeSymbol(".")) {
    if (Peek().kind != Token::Kind::kIdent) return Expect("column after '.'");
    qualifier = first;
    column = Next().text;
  } else {
    column = first;
  }
  POLY_ASSIGN_OR_RETURN(size_t index, ResolveColumn(qualifier, column));
  return Expr::Column(index);
}

StatusOr<Value> ParserImpl::ParseLiteralValue() {
  const Token& tok = Peek();
  switch (tok.kind) {
    case Token::Kind::kInt: {
      int64_t v = tok.int_value;
      Next();
      return Value::Int(v);
    }
    case Token::Kind::kDouble: {
      double v = tok.dbl_value;
      Next();
      return Value::Dbl(v);
    }
    case Token::Kind::kString: {
      std::string v = tok.text;
      Next();
      return Value::Str(std::move(v));
    }
    case Token::Kind::kIdent:
      if (tok.upper == "TRUE") {
        Next();
        return Value::Boolean(true);
      }
      if (tok.upper == "FALSE") {
        Next();
        return Value::Boolean(false);
      }
      if (tok.upper == "NULL") {
        Next();
        return Value::Null();
      }
      return Expect("literal");
    default:
      return Expect("literal");
  }
}

StatusOr<ExprPtr> ParserImpl::ParseOr() {
  POLY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (ConsumeKeyword("OR")) {
    POLY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = Expr::Or(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<ExprPtr> ParserImpl::ParseAnd() {
  POLY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (ConsumeKeyword("AND")) {
    POLY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = Expr::And(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<ExprPtr> ParserImpl::ParseNot() {
  if (ConsumeKeyword("NOT")) {
    POLY_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
    return Expr::Not(std::move(inner));
  }
  return ParseComparison();
}

StatusOr<ExprPtr> ParserImpl::ParseComparison() {
  POLY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

  if (ConsumeKeyword("LIKE")) {
    if (Peek().kind != Token::Kind::kString) return Expect("pattern string after LIKE");
    std::string pattern = Next().text;
    return Expr::Like(std::move(lhs), std::move(pattern));
  }
  if (ConsumeKeyword("IN")) {
    if (!ConsumeSymbol("(")) return Expect("'(' after IN");
    std::vector<Value> candidates;
    for (;;) {
      POLY_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      candidates.push_back(std::move(v));
      if (ConsumeSymbol(")")) break;
      if (!ConsumeSymbol(",")) return Expect("',' or ')' in IN list");
    }
    return Expr::In(std::move(lhs), std::move(candidates));
  }
  if (ConsumeKeyword("IS")) {
    bool negated = ConsumeKeyword("NOT");
    if (!ConsumeKeyword("NULL")) return Expect("NULL after IS");
    ExprPtr test = Expr::IsNull(std::move(lhs));
    return negated ? Expr::Not(std::move(test)) : test;
  }

  static const std::unordered_map<std::string, CmpOp> kOps = {
      {"=", CmpOp::kEq},  {"!=", CmpOp::kNe}, {"<>", CmpOp::kNe},
      {"<", CmpOp::kLt},  {"<=", CmpOp::kLe}, {">", CmpOp::kGt},
      {">=", CmpOp::kGe}};
  if (Peek().kind == Token::Kind::kSymbol) {
    auto it = kOps.find(Peek().text);
    if (it != kOps.end()) {
      Next();
      POLY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return Expr::Compare(it->second, std::move(lhs), std::move(rhs));
    }
  }
  return lhs;
}

StatusOr<ExprPtr> ParserImpl::ParseAdditive() {
  POLY_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  for (;;) {
    if (ConsumeSymbol("+")) {
      POLY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Arith(ArithOp::kAdd, std::move(lhs), std::move(rhs));
    } else if (ConsumeSymbol("-")) {
      POLY_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Arith(ArithOp::kSub, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

StatusOr<ExprPtr> ParserImpl::ParseMultiplicative() {
  POLY_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePrimary());
  for (;;) {
    if (ConsumeSymbol("*")) {
      POLY_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary());
      lhs = Expr::Arith(ArithOp::kMul, std::move(lhs), std::move(rhs));
    } else if (ConsumeSymbol("/")) {
      POLY_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary());
      lhs = Expr::Arith(ArithOp::kDiv, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

StatusOr<ExprPtr> ParserImpl::ParsePrimary() {
  if (ConsumeSymbol("(")) {
    POLY_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
    if (!ConsumeSymbol(")")) return Expect("')'");
    return inner;
  }
  if (ConsumeSymbol("-")) {  // unary minus on a numeric primary
    POLY_ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary());
    return Expr::Arith(ArithOp::kSub, Expr::Literal(Value::Int(0)), std::move(inner));
  }
  const Token& tok = Peek();
  if (tok.kind == Token::Kind::kInt || tok.kind == Token::Kind::kDouble ||
      tok.kind == Token::Kind::kString ||
      (tok.kind == Token::Kind::kIdent &&
       (tok.upper == "TRUE" || tok.upper == "FALSE" || tok.upper == "NULL"))) {
    POLY_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
    return Expr::Literal(std::move(v));
  }
  if (tok.kind == Token::Kind::kIdent) {
    if (in_having_) {
      if (Peek(1).kind == Token::Kind::kSymbol && Peek(1).text == "(" &&
          AggFuncs().count(tok.upper) > 0) {
        return ParseHavingAggregate();
      }
      return ParseHavingColumnRef();
    }
    return ParseColumnRef();
  }
  return Expect("expression");
}

StatusOr<ExprPtr> ParserImpl::ParseHavingAggregate() {
  AggFunc func = AggFuncs().at(Peek().upper);
  Next();  // function name
  Next();  // '('
  ExprPtr input;
  if (func == AggFunc::kCount && ConsumeSymbol("*")) {
    input = nullptr;
  } else {
    // The aggregate's argument references base-table columns, not the
    // aggregate output — parse it in normal mode.
    in_having_ = false;
    auto parsed = ParseExpr();
    in_having_ = true;
    POLY_RETURN_IF_ERROR(parsed.status());
    input = *parsed;
  }
  if (!ConsumeSymbol(")")) return Expect("')' after aggregate in HAVING");

  // Reuse a select-list aggregate when the call matches structurally (same
  // function; both COUNT(*) or both the same plain column).
  size_t group_width = having_group_by_->size();
  for (size_t i = 0; i < having_aggs_->size(); ++i) {
    const AggSpec& agg = (*having_aggs_)[i];
    if (agg.func != func) continue;
    bool both_star = agg.input == nullptr && input == nullptr;
    bool same_column = agg.input != nullptr && input != nullptr &&
                       agg.input->kind() == ExprKind::kColumn &&
                       input->kind() == ExprKind::kColumn &&
                       agg.input->column_index() == input->column_index();
    if (both_star || same_column) return Expr::Column(group_width + i);
  }
  // No match: compute it as a hidden slot the final projection drops.
  having_aggs_->push_back(
      {func, input, "$having" + std::to_string(having_hidden_++)});
  return Expr::Column(group_width + having_aggs_->size() - 1);
}

StatusOr<ExprPtr> ParserImpl::ParseHavingColumnRef() {
  std::string first = Next().text;
  std::string qualifier, column;
  if (ConsumeSymbol(".")) {
    if (Peek().kind != Token::Kind::kIdent) return Expect("column after '.'");
    qualifier = first;
    column = Next().text;
  } else {
    column = first;
  }
  if (qualifier.empty()) {
    auto it = having_slots_.find(column);
    if (it != having_slots_.end()) return Expr::Column(it->second);
  }
  // Qualified (or un-aliased) reference to a GROUP BY column by its
  // base-table name.
  auto base = ResolveColumn(qualifier, column);
  if (base.ok()) {
    for (size_t g = 0; g < having_group_by_->size(); ++g) {
      if ((*having_group_by_)[g] == *base) return Expr::Column(g);
    }
  }
  return Status::InvalidArgument(
      "HAVING references '" + column +
      "', which is neither a GROUP BY column nor a select-list aggregate");
}

StatusOr<SelectItem> ParserImpl::ParseSelectItem() {
  SelectItem item;
  if (ConsumeSymbol("*")) {
    item.star = true;
    return item;
  }
  // Aggregate function?
  const auto& kAggs = AggFuncs();
  if (Peek().kind == Token::Kind::kIdent && Peek(1).kind == Token::Kind::kSymbol &&
      Peek(1).text == "(") {
    auto it = kAggs.find(Peek().upper);
    if (it != kAggs.end()) {
      std::string func_name = ToLower(Next().text);
      Next();  // '('
      item.is_aggregate = true;
      item.agg_func = it->second;
      if (item.agg_func == AggFunc::kCount && ConsumeSymbol("*")) {
        item.expr = nullptr;
        item.name = "count";
      } else {
        POLY_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        item.name = func_name;
      }
      if (!ConsumeSymbol(")")) return Expect("')' after aggregate");
      if (ConsumeKeyword("AS")) {
        if (Peek().kind != Token::Kind::kIdent) return Expect("alias after AS");
        item.name = Next().text;
      }
      return item;
    }
  }
  // Plain expression; default name = resolved column name for bare
  // (possibly qualified) column references.
  POLY_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  item.name = item.expr->kind() == ExprKind::kColumn
                  ? bindings_[item.expr->column_index()].column
                  : "expr";
  if (ConsumeKeyword("AS")) {
    if (Peek().kind != Token::Kind::kIdent) return Expect("alias after AS");
    item.name = Next().text;
  }
  return item;
}

StatusOr<PlanPtr> ParserImpl::ParseSelect() {
  if (!ConsumeKeyword("SELECT")) return Expect("SELECT");
  // DISTINCT dedups the final projected rows (applied below as a
  // no-aggregate Aggregate wrapper, before ORDER BY/LIMIT).
  bool distinct = ConsumeKeyword("DISTINCT");

  // The select list references columns that are only known after FROM, so
  // remember its token range and parse it afterwards.
  size_t select_start = pos_;
  int depth = 0;
  while (Peek().kind != Token::Kind::kEnd) {
    if (Peek().kind == Token::Kind::kSymbol && Peek().text == "(") ++depth;
    if (Peek().kind == Token::Kind::kSymbol && Peek().text == ")") --depth;
    if (depth == 0 && AtKeyword("FROM")) break;
    Next();
  }
  size_t select_end = pos_;
  if (!ConsumeKeyword("FROM")) return Expect("FROM");

  // FROM + JOINs build the binding environment and the plan spine.
  if (Peek().kind != Token::Kind::kIdent) return Expect("table name");
  std::string first_table = Next().text;
  POLY_RETURN_IF_ERROR(BindTable(first_table));
  PlanPtr plan = PlanBuilder::Scan(first_table).Build();

  while (ConsumeKeyword("JOIN")) {
    if (Peek().kind != Token::Kind::kIdent) return Expect("table name after JOIN");
    std::string join_table = Next().text;
    size_t left_width = bindings_.size();
    POLY_RETURN_IF_ERROR(BindTable(join_table));
    if (!ConsumeKeyword("ON")) return Expect("ON");
    POLY_ASSIGN_OR_RETURN(ExprPtr a, ParseColumnRef());
    if (!ConsumeSymbol("=")) return Expect("'=' in join condition");
    POLY_ASSIGN_OR_RETURN(ExprPtr b, ParseColumnRef());
    size_t ia = a->column_index(), ib = b->column_index();
    // One side must come from the joined table, the other from the left.
    size_t left_key, right_key;
    if (ia < left_width && ib >= left_width) {
      left_key = ia;
      right_key = ib - left_width;
    } else if (ib < left_width && ia >= left_width) {
      left_key = ib;
      right_key = ia - left_width;
    } else {
      return Status::InvalidArgument("join condition must reference both sides");
    }
    plan = PlanBuilder::From(plan)
               .HashJoin(PlanBuilder::Scan(join_table).Build(), left_key, right_key)
               .Build();
  }

  // WHERE.
  if (ConsumeKeyword("WHERE")) {
    POLY_ASSIGN_OR_RETURN(ExprPtr predicate, ParseExpr());
    plan = PlanBuilder::From(plan).Filter(std::move(predicate)).Build();
  }

  // GROUP BY.
  std::vector<size_t> group_by;
  bool has_group = false;
  if (ConsumeKeyword("GROUP")) {
    if (!ConsumeKeyword("BY")) return Expect("BY after GROUP");
    has_group = true;
    for (;;) {
      POLY_ASSIGN_OR_RETURN(ExprPtr col, ParseColumnRef());
      group_by.push_back(col->column_index());
      if (!ConsumeSymbol(",")) break;
    }
  }

  // HAVING references select-list aliases and the aggregate output, which
  // are only known after the deferred select list parses — remember its
  // token range like the select list's.
  bool has_having = false;
  size_t having_start = 0, having_end = 0;
  if (ConsumeKeyword("HAVING")) {
    has_having = true;
    having_start = pos_;
    int having_depth = 0;
    while (Peek().kind != Token::Kind::kEnd) {
      if (Peek().kind == Token::Kind::kSymbol && Peek().text == "(") ++having_depth;
      if (Peek().kind == Token::Kind::kSymbol && Peek().text == ")") --having_depth;
      if (having_depth == 0 && (AtKeyword("ORDER") || AtKeyword("LIMIT"))) break;
      if (Peek().kind == Token::Kind::kSymbol && Peek().text == ";") break;
      Next();
    }
    having_end = pos_;
  }

  // ORDER BY / LIMIT (parsed now, applied after projection).
  std::vector<ParsedOrderKey> order_keys;
  if (ConsumeKeyword("ORDER")) {
    if (!ConsumeKeyword("BY")) return Expect("BY after ORDER");
    for (;;) {
      if (Peek().kind != Token::Kind::kIdent) return Expect("column in ORDER BY");
      ParsedOrderKey key;
      key.column = Next().text;
      if (ConsumeKeyword("DESC")) {
        key.ascending = false;
      } else {
        ConsumeKeyword("ASC");
      }
      order_keys.push_back(std::move(key));
      if (!ConsumeSymbol(",")) break;
    }
  }
  bool has_limit = false;
  size_t limit = 0;
  if (ConsumeKeyword("LIMIT")) {
    if (Peek().kind != Token::Kind::kInt) return Expect("integer after LIMIT");
    has_limit = true;
    limit = static_cast<size_t>(Next().int_value);
  }
  if (Peek().kind != Token::Kind::kEnd) {
    if (ConsumeSymbol(";") && Peek().kind == Token::Kind::kEnd) {
      // trailing semicolon ok
    } else {
      return Expect("end of statement");
    }
  }

  // Now parse the deferred select list with bindings in place.
  size_t resume = pos_;
  pos_ = select_start;
  std::vector<SelectItem> items;
  for (;;) {
    POLY_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    items.push_back(std::move(item));
    if (!ConsumeSymbol(",")) break;
  }
  if (pos_ != select_end) return Expect("FROM after select list");
  pos_ = resume;

  bool has_aggregates = false;
  for (const auto& item : items) has_aggregates |= item.is_aggregate;

  if (has_having && !has_aggregates && !has_group) {
    return Status::InvalidArgument(
        "HAVING requires GROUP BY or an aggregate select list");
  }

  std::vector<std::string> output_names;
  if (has_aggregates || has_group) {
    // Build the aggregate node, then a projection that reorders its output
    // ([group cols..., aggs...]) into the SELECT order.
    std::vector<AggSpec> aggs;
    std::vector<ExprPtr> projections;
    size_t agg_slot = 0;
    for (const auto& item : items) {
      if (item.star) {
        return Status::InvalidArgument("SELECT * cannot be combined with aggregates");
      }
      if (item.is_aggregate) {
        aggs.push_back({item.agg_func, item.expr, item.name});
        projections.push_back(Expr::Column(group_by.size() + agg_slot));
        ++agg_slot;
      } else {
        if (item.expr->kind() != ExprKind::kColumn) {
          return Status::InvalidArgument(
              "non-aggregate select items must be plain GROUP BY columns");
        }
        size_t col = item.expr->column_index();
        size_t slot = group_by.size();
        for (size_t g = 0; g < group_by.size(); ++g) {
          if (group_by[g] == col) slot = g;
        }
        if (slot == group_by.size()) {
          return Status::InvalidArgument("column '" + item.name +
                                         "' must appear in GROUP BY");
        }
        projections.push_back(Expr::Column(slot));
      }
      output_names.push_back(item.name);
    }

    // Parse the deferred HAVING clause against the aggregate output row
    // ([group cols..., agg slots...]); unmatched aggregate calls append
    // hidden slots to `aggs` that the projection below never references.
    ExprPtr having_expr;
    if (has_having) {
      having_slots_.clear();
      for (size_t g = 0; g < group_by.size(); ++g) {
        having_slots_.emplace(bindings_[group_by[g]].column, g);
      }
      size_t agg_out = 0;
      for (const auto& item : items) {
        if (item.is_aggregate) {
          having_slots_.emplace(item.name, group_by.size() + agg_out);
          ++agg_out;
        } else {
          size_t col = item.expr->column_index();
          for (size_t g = 0; g < group_by.size(); ++g) {
            if (group_by[g] == col) having_slots_.emplace(item.name, g);
          }
        }
      }
      size_t after_clauses = pos_;
      pos_ = having_start;
      in_having_ = true;
      having_group_by_ = &group_by;
      having_aggs_ = &aggs;
      auto parsed = ParseExpr();
      in_having_ = false;
      POLY_RETURN_IF_ERROR(parsed.status());
      having_expr = std::move(*parsed);
      if (pos_ != having_end) return Expect("end of HAVING clause");
      pos_ = after_clauses;
    }

    PlanBuilder built =
        PlanBuilder::From(plan).Aggregate(std::move(group_by), std::move(aggs));
    if (having_expr != nullptr) {
      built = std::move(built).Filter(std::move(having_expr));
    }
    plan = std::move(built).Project(std::move(projections), output_names).Build();
  } else if (items.size() == 1 && items[0].star) {
    for (const Binding& b : bindings_) output_names.push_back(b.column);
    // No projection needed: scan/join output is already the full row.
  } else {
    std::vector<ExprPtr> projections;
    for (const auto& item : items) {
      if (item.star) {
        return Status::InvalidArgument("'*' must be the only select item");
      }
      projections.push_back(item.expr);
      output_names.push_back(item.name);
    }
    plan = PlanBuilder::From(plan).Project(std::move(projections), output_names).Build();
  }

  // DISTINCT = group by every output column with no aggregates: the
  // interpreted executor emits group keys in first-occurrence order with
  // their input names, so column names and row order match SQL semantics.
  // (The compiled path refuses the no-aggregate shape and falls back.)
  if (distinct) {
    std::vector<size_t> dedup_cols(output_names.size());
    for (size_t i = 0; i < output_names.size(); ++i) dedup_cols[i] = i;
    plan = PlanBuilder::From(plan)
               .Aggregate(std::move(dedup_cols), {})
               .Build();
  }

  // ORDER BY resolves against the output schema.
  if (!order_keys.empty()) {
    std::vector<SortKey> keys;
    for (const auto& parsed : order_keys) {
      int idx = -1;
      for (size_t i = 0; i < output_names.size(); ++i) {
        if (output_names[i] == parsed.column) idx = static_cast<int>(i);
      }
      if (idx < 0) {
        return Status::NotFound("ORDER BY column '" + parsed.column +
                                "' is not in the select list");
      }
      keys.push_back({static_cast<size_t>(idx), parsed.ascending});
    }
    plan = PlanBuilder::From(plan).Sort(std::move(keys)).Build();
  }
  if (has_limit) plan = PlanBuilder::From(plan).Limit(limit).Build();
  return plan;
}

}  // namespace

StatusOr<PlanPtr> SqlParser::Parse(const std::string& sql) const {
  POLY_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  ParserImpl parser(db_, std::move(tokens));
  return parser.ParseSelect();
}

}  // namespace poly
