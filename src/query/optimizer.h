#ifndef POLY_QUERY_OPTIMIZER_H_
#define POLY_QUERY_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "query/plan.h"
#include "storage/database.h"

namespace poly {

/// Hook through which the aging module (§III, E12) injects semantic
/// partition pruning into planning: given a table and the query predicate,
/// return the partition tables that must be scanned.
class PartitionPruner {
 public:
  virtual ~PartitionPruner() = default;
  virtual std::vector<std::string> Prune(const std::string& table,
                                         const ExprPtr& predicate) const = 0;
};

/// Statistics from one optimization pass.
struct OptimizerStats {
  int filters_pushed = 0;
  int join_conjuncts_pushed = 0;
  int constants_folded = 0;
  int partitions_pruned = 0;
  int partitions_total = 0;
};

/// Rule-based plan rewriter: predicate pushdown into scans, constant
/// folding, trivial-filter elimination, and aging-rule partition pruning.
class Optimizer {
 public:
  /// `db` (optional) enables rules that need schema widths, e.g. pushing
  /// filter conjuncts below hash joins; `pruner` enables partition pruning.
  explicit Optimizer(const PartitionPruner* pruner = nullptr,
                     const Database* db = nullptr)
      : pruner_(pruner), db_(db) {}

  /// Returns a rewritten copy of the plan (input is not modified).
  PlanPtr Optimize(const PlanPtr& plan);

  const OptimizerStats& stats() const { return stats_; }

  /// Folds constant subtrees of an expression (exposed for tests).
  ExprPtr FoldConstants(const ExprPtr& e);

 private:
  PlanPtr Rewrite(const PlanPtr& node);

  /// Output column count of a plan, or -1 if not derivable.
  int PlanWidth(const PlanNode& node) const;

  const PartitionPruner* pruner_;
  const Database* db_;
  OptimizerStats stats_;
};

}  // namespace poly

#endif  // POLY_QUERY_OPTIMIZER_H_
