#include "query/optimizer.h"

namespace poly {

namespace {

bool IsLiteralBool(const ExprPtr& e, bool value) {
  return e && e->kind() == ExprKind::kLiteral &&
         e->literal().type() == DataType::kBool && e->literal().AsBool() == value;
}

bool IsConstant(const ExprPtr& e) {
  if (!e) return false;
  switch (e->kind()) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kColumn:
      return false;
    case ExprKind::kIn:
    case ExprKind::kIsNull:
    case ExprKind::kLike:
    case ExprKind::kNot:
      return IsConstant(e->left());
    default:
      return IsConstant(e->left()) && IsConstant(e->right());
  }
}

}  // namespace

ExprPtr Optimizer::FoldConstants(const ExprPtr& e) {
  if (!e || e->kind() == ExprKind::kLiteral || e->kind() == ExprKind::kColumn) return e;

  if (IsConstant(e)) {
    ++stats_.constants_folded;
    return Expr::Literal(e->Eval(Row{}));
  }

  switch (e->kind()) {
    case ExprKind::kAnd: {
      ExprPtr l = FoldConstants(e->left());
      ExprPtr r = FoldConstants(e->right());
      if (IsLiteralBool(l, true)) return r;
      if (IsLiteralBool(r, true)) return l;
      if (IsLiteralBool(l, false) || IsLiteralBool(r, false)) {
        ++stats_.constants_folded;
        return Expr::Literal(Value::Boolean(false));
      }
      return Expr::And(std::move(l), std::move(r));
    }
    case ExprKind::kOr: {
      ExprPtr l = FoldConstants(e->left());
      ExprPtr r = FoldConstants(e->right());
      if (IsLiteralBool(l, false)) return r;
      if (IsLiteralBool(r, false)) return l;
      if (IsLiteralBool(l, true) || IsLiteralBool(r, true)) {
        ++stats_.constants_folded;
        return Expr::Literal(Value::Boolean(true));
      }
      return Expr::Or(std::move(l), std::move(r));
    }
    case ExprKind::kNot:
      return Expr::Not(FoldConstants(e->left()));
    case ExprKind::kCompare:
      return Expr::Compare(e->cmp_op(), FoldConstants(e->left()),
                           FoldConstants(e->right()));
    case ExprKind::kArithmetic:
      return Expr::Arith(e->arith_op(), FoldConstants(e->left()),
                         FoldConstants(e->right()));
    default:
      return e;
  }
}

PlanPtr Optimizer::Optimize(const PlanPtr& plan) {
  if (!plan) return plan;
  return Rewrite(plan);
}

namespace {

/// Splits a predicate into top-level conjuncts.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (!e) return;
  if (e->kind() == ExprKind::kAnd) {
    SplitConjuncts(e->left(), out);
    SplitConjuncts(e->right(), out);
  } else {
    out->push_back(e);
  }
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out;
  for (const ExprPtr& c : conjuncts) {
    out = out ? Expr::And(out, c) : c;
  }
  return out;
}

/// Rewrites column indexes by `shift` (used to move predicates from the
/// join output schema into the right input's schema). All referenced
/// columns must be >= shift.
ExprPtr ShiftColumns(const ExprPtr& e, size_t shift) {
  if (!e) return e;
  switch (e->kind()) {
    case ExprKind::kColumn:
      return Expr::Column(e->column_index() - shift);
    case ExprKind::kLiteral:
      return e;
    case ExprKind::kCompare:
      return Expr::Compare(e->cmp_op(), ShiftColumns(e->left(), shift),
                           ShiftColumns(e->right(), shift));
    case ExprKind::kAnd:
      return Expr::And(ShiftColumns(e->left(), shift), ShiftColumns(e->right(), shift));
    case ExprKind::kOr:
      return Expr::Or(ShiftColumns(e->left(), shift), ShiftColumns(e->right(), shift));
    case ExprKind::kNot:
      return Expr::Not(ShiftColumns(e->left(), shift));
    case ExprKind::kArithmetic:
      return Expr::Arith(e->arith_op(), ShiftColumns(e->left(), shift),
                         ShiftColumns(e->right(), shift));
    case ExprKind::kLike:
      return Expr::Like(ShiftColumns(e->left(), shift), e->pattern());
    case ExprKind::kIn:
      return Expr::In(ShiftColumns(e->left(), shift), e->candidates());
    case ExprKind::kIsNull:
      return Expr::IsNull(ShiftColumns(e->left(), shift));
  }
  return e;
}

/// Min column index referenced, or SIZE_MAX if none.
size_t MinColumnIndex(const ExprPtr& e) {
  if (!e) return SIZE_MAX;
  if (e->kind() == ExprKind::kColumn) return e->column_index();
  size_t lo = SIZE_MAX;
  if (e->left()) lo = std::min(lo, MinColumnIndex(e->left()));
  if (e->right()) lo = std::min(lo, MinColumnIndex(e->right()));
  return lo;
}

/// Output width of a plan node, where derivable without catalog access
/// (-1 if unknown). Joins/scans need the table schema, so this only has to
/// work for the nodes a filter sits on top of after parsing: project and
/// aggregate expose widths directly; others report unknown.
int KnownWidth(const PlanNode& node) {
  switch (node.kind) {
    case PlanKind::kProject:
      return static_cast<int>(node.projections.size());
    case PlanKind::kAggregate:
      return static_cast<int>(node.group_by.size() + node.aggregates.size());
    default:
      return -1;
  }
}

}  // namespace

int Optimizer::PlanWidth(const PlanNode& node) const {
  int known = KnownWidth(node);
  if (known >= 0) return known;
  switch (node.kind) {
    case PlanKind::kScan: {
      if (db_ == nullptr) return -1;
      auto t = db_->GetTable(node.scan_partitions.empty() ? node.table
                                                          : node.scan_partitions[0]);
      return t.ok() ? static_cast<int>((*t)->schema().num_columns()) : -1;
    }
    case PlanKind::kFilter:
    case PlanKind::kSort:
    case PlanKind::kLimit:
      return PlanWidth(*node.children[0]);
    case PlanKind::kHashJoin: {
      int l = PlanWidth(*node.children[0]);
      int r = PlanWidth(*node.children[1]);
      return l >= 0 && r >= 0 ? l + r : -1;
    }
    default:
      return -1;
  }
}

PlanPtr Optimizer::Rewrite(const PlanPtr& node) {
  // Rewrite children first (bottom-up).
  auto copy = std::make_shared<PlanNode>(*node);
  for (auto& child : copy->children) child = Rewrite(child);

  if (copy->kind == PlanKind::kFilter) {
    copy->predicate = FoldConstants(copy->predicate);
    // Trivial filter elimination.
    if (IsLiteralBool(copy->predicate, true)) return copy->children[0];
    // Join pushdown: conjuncts that reference only one join input move
    // below the join, where they can become scan predicates.
    if (copy->children[0]->kind == PlanKind::kHashJoin) {
      const PlanNode& join = *copy->children[0];
      int left_width = PlanWidth(*join.children[0]);
      if (left_width >= 0) {
        std::vector<ExprPtr> conjuncts;
        SplitConjuncts(copy->predicate, &conjuncts);
        std::vector<ExprPtr> left_side, right_side, remaining;
        for (const ExprPtr& c : conjuncts) {
          int max_col = c->MaxColumnIndex();
          size_t min_col = MinColumnIndex(c);
          if (max_col >= 0 && max_col < left_width) {
            left_side.push_back(c);
          } else if (min_col != SIZE_MAX &&
                     min_col >= static_cast<size_t>(left_width)) {
            right_side.push_back(ShiftColumns(c, static_cast<size_t>(left_width)));
          } else {
            remaining.push_back(c);  // spans both sides (or no columns)
          }
        }
        if (!left_side.empty() || !right_side.empty()) {
          stats_.join_conjuncts_pushed +=
              static_cast<int>(left_side.size() + right_side.size());
          auto new_join = std::make_shared<PlanNode>(join);
          if (!left_side.empty()) {
            new_join->children[0] =
                PlanBuilder::From(new_join->children[0]).Filter(AndAll(left_side)).Build();
          }
          if (!right_side.empty()) {
            new_join->children[1] = PlanBuilder::From(new_join->children[1])
                                        .Filter(AndAll(right_side))
                                        .Build();
          }
          PlanPtr rebuilt = Rewrite(new_join);
          if (remaining.empty()) return rebuilt;
          return PlanBuilder::From(rebuilt).Filter(AndAll(remaining)).Build();
        }
      }
    }
    // Predicate pushdown: Filter(Scan) -> Scan with merged predicate.
    if (copy->children[0]->kind == PlanKind::kScan) {
      auto scan = std::make_shared<PlanNode>(*copy->children[0]);
      scan->scan_predicate = scan->scan_predicate
                                 ? Expr::And(scan->scan_predicate, copy->predicate)
                                 : copy->predicate;
      // The merged predicate may prune partitions the bare scan could not.
      scan->scan_partitions.clear();
      ++stats_.filters_pushed;
      return Rewrite(scan);
    }
  }

  if (copy->kind == PlanKind::kScan) {
    if (copy->scan_predicate) copy->scan_predicate = FoldConstants(copy->scan_predicate);
    if (pruner_ != nullptr && copy->scan_partitions.empty()) {
      std::vector<std::string> parts = pruner_->Prune(copy->table, copy->scan_predicate);
      if (!parts.empty()) {
        copy->scan_partitions = std::move(parts);
        ++stats_.partitions_pruned;
      }
    }
  }
  return copy;
}

}  // namespace poly
