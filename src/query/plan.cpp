#include "query/plan.h"

namespace poly {

std::string PlanNode::ToString(int indent) const {
  std::string pad(indent * 2, ' ');
  std::string out = pad;
  switch (kind) {
    case PlanKind::kScan:
      out += "Scan(" + table;
      if (scan_predicate) out += ", pred=" + scan_predicate->ToString();
      out += ")";
      break;
    case PlanKind::kFilter:
      out += "Filter(" + (predicate ? predicate->ToString() : "true") + ")";
      break;
    case PlanKind::kProject: {
      out += "Project(";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i) out += ", ";
        out += output_names[i] + "=" + projections[i]->ToString();
      }
      out += ")";
      break;
    }
    case PlanKind::kHashJoin:
      out += "HashJoin(left.$" + std::to_string(left_key) + " = right.$" +
             std::to_string(right_key) + ")";
      break;
    case PlanKind::kAggregate: {
      out += "Aggregate(groups=[";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i) out += ",";
        out += "$" + std::to_string(group_by[i]);
      }
      out += "], aggs=" + std::to_string(aggregates.size()) + ")";
      break;
    }
    case PlanKind::kSort:
      out += "Sort(" + std::to_string(sort_keys.size()) + " keys)";
      break;
    case PlanKind::kLimit:
      out += "Limit(" + std::to_string(limit) + ")";
      break;
    case PlanKind::kExchange: {
      switch (exchange_mode) {
        case ExchangeMode::kGather: out += "Exchange(gather)"; break;
        case ExchangeMode::kBroadcast: out += "Exchange(broadcast)"; break;
        case ExchangeMode::kRepartition: {
          out += "Exchange(repartition, keys=[";
          for (size_t i = 0; i < exchange_keys.size(); ++i) {
            if (i) out += ",";
            out += "$" + std::to_string(exchange_keys[i]);
          }
          out += "])";
          break;
        }
      }
      break;
    }
    case PlanKind::kPartialAggregate: {
      out += "PartialAggregate(groups=[";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i) out += ",";
        out += "$" + std::to_string(group_by[i]);
      }
      out += "], slots=" +
             std::to_string(PartialAggLayout::For(aggregates).num_slots()) + ")";
      break;
    }
    case PlanKind::kFinalAggregate:
      out += "FinalAggregate(keys=" + std::to_string(group_by.size()) +
             ", aggs=" + std::to_string(aggregates.size()) + ")";
      break;
  }
  out += "\n";
  for (const auto& child : children) out += child->ToString(indent + 1);
  return out;
}

PlanBuilder PlanBuilder::Scan(std::string table) {
  PlanBuilder b;
  b.root_ = std::make_shared<PlanNode>();
  b.root_->kind = PlanKind::kScan;
  b.root_->table = std::move(table);
  return b;
}

PlanBuilder PlanBuilder::From(PlanPtr node) {
  PlanBuilder b;
  b.root_ = std::move(node);
  return b;
}

PlanBuilder PlanBuilder::Filter(ExprPtr predicate) && {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kFilter;
  node->predicate = std::move(predicate);
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return std::move(*this);
}

PlanBuilder PlanBuilder::Project(std::vector<ExprPtr> exprs,
                                 std::vector<std::string> names) && {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kProject;
  node->projections = std::move(exprs);
  node->output_names = std::move(names);
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return std::move(*this);
}

PlanBuilder PlanBuilder::HashJoin(PlanPtr right, size_t left_key, size_t right_key) && {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kHashJoin;
  node->left_key = left_key;
  node->right_key = right_key;
  node->children.push_back(std::move(root_));
  node->children.push_back(std::move(right));
  root_ = std::move(node);
  return std::move(*this);
}

PlanBuilder PlanBuilder::Aggregate(std::vector<size_t> group_by,
                                   std::vector<AggSpec> aggs) && {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kAggregate;
  node->group_by = std::move(group_by);
  node->aggregates = std::move(aggs);
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return std::move(*this);
}

PlanBuilder PlanBuilder::PartialAggregate(std::vector<size_t> group_by,
                                          std::vector<AggSpec> aggs) && {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kPartialAggregate;
  node->group_by = std::move(group_by);
  node->aggregates = std::move(aggs);
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return std::move(*this);
}

PlanBuilder PlanBuilder::FinalAggregate(std::vector<size_t> group_by,
                                        std::vector<AggSpec> aggs) && {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kFinalAggregate;
  node->group_by = std::move(group_by);
  node->aggregates = std::move(aggs);
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return std::move(*this);
}

PlanBuilder PlanBuilder::Exchange(ExchangeMode mode, std::vector<size_t> keys) && {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kExchange;
  node->exchange_mode = mode;
  node->exchange_keys = std::move(keys);
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return std::move(*this);
}

PlanBuilder PlanBuilder::Sort(std::vector<SortKey> keys) && {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kSort;
  node->sort_keys = std::move(keys);
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return std::move(*this);
}

PlanBuilder PlanBuilder::Limit(size_t n) && {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kLimit;
  node->limit = n;
  node->children.push_back(std::move(root_));
  root_ = std::move(node);
  return std::move(*this);
}

PartialAggLayout PartialAggLayout::For(const std::vector<AggSpec>& user_aggs) {
  PartialAggLayout layout;
  for (const AggSpec& agg : user_aggs) {
    Entry entry;
    entry.func = agg.func;
    entry.slot = layout.partial_specs.size();
    layout.entries.push_back(entry);
    if (agg.func == AggFunc::kAvg) {
      layout.partial_specs.push_back({AggFunc::kSum, agg.input, "s"});
      layout.partial_specs.push_back({AggFunc::kCount, agg.input, "c"});
    } else {
      layout.partial_specs.push_back({agg.func, agg.input, "p"});
    }
  }
  return layout;
}

PlanPtr RewriteScanTables(const PlanPtr& plan, const std::string& from,
                          const std::string& to) {
  if (!plan) return plan;
  auto copy = std::make_shared<PlanNode>(*plan);
  if (copy->kind == PlanKind::kScan && copy->table == from) copy->table = to;
  for (auto& child : copy->children) child = RewriteScanTables(child, from, to);
  return copy;
}

}  // namespace poly
