#include "query/trace.h"

#include <chrono>
#include <ctime>

namespace poly {

namespace {

/// Fixed-point human duration: nanoseconds up to microseconds as-is, then
/// two-decimal us/ms/s (annotated plans are read by people).
std::string HumanNanos(uint64_t nanos) {
  char buf[32];
  if (nanos < 1000) {
    std::snprintf(buf, sizeof(buf), "%lluns", static_cast<unsigned long long>(nanos));
  } else if (nanos < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fus", static_cast<double>(nanos) / 1e3);
  } else if (nanos < 1000ull * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(nanos) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(nanos) / 1e9);
  }
  return buf;
}

}  // namespace

uint64_t OperatorSpan::SelfWallNanos() const {
  uint64_t child_nanos = 0;
  for (const OperatorSpan& c : children) child_nanos += c.wall_nanos;
  return wall_nanos > child_nanos ? wall_nanos - child_nanos : 0;
}

std::string OperatorSpan::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += label;
  out += "  [rows=" + std::to_string(rows_out);
  out += " in=" + std::to_string(rows_in);
  out += " bytes=" + std::to_string(bytes_out);
  out += " wall=" + HumanNanos(wall_nanos);
  out += " cpu=" + HumanNanos(cpu_nanos);
  out += " self=" + HumanNanos(SelfWallNanos());
  out += "]\n";
  for (const OperatorSpan& c : children) out += c.ToString(indent + 1);
  return out;
}

uint64_t TraceWallNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t TraceThreadCpuNanos() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace poly
