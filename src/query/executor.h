#ifndef POLY_QUERY_EXECUTOR_H_
#define POLY_QUERY_EXECUTOR_H_

#include "query/plan.h"
#include "query/result.h"
#include "storage/database.h"
#include "storage/mvcc.h"

namespace poly {

/// Counters exposed by the interpreted executor so experiments can report
/// rows scanned/materialized (E10/E12 measure exactly these).
struct ExecStats {
  uint64_t rows_scanned = 0;      ///< row versions visited in scans
  uint64_t rows_materialized = 0; ///< rows surviving scan predicates
  uint64_t id_range_scans = 0;    ///< scans answered via dictionary ID ranges
  uint64_t partitions_scanned = 0;
};

/// Vectorized-enough interpreted executor: every operator materializes its
/// result (simple, predictable, and a fair baseline for the compiled path of
/// E13). Reads run under snapshot-isolation `view`.
class Executor {
 public:
  Executor(const Database* db, ReadView view) : db_(db), view_(view) {}

  StatusOr<ResultSet> Execute(const PlanPtr& plan);

  const ExecStats& stats() const { return stats_; }

 private:
  StatusOr<ResultSet> Exec(const PlanNode& node);
  StatusOr<ResultSet> ExecScan(const PlanNode& node);
  Status ScanOneTable(const ColumnTable& table, const ExprPtr& predicate,
                      ResultSet* out);
  StatusOr<ResultSet> ExecFilter(const PlanNode& node);
  StatusOr<ResultSet> ExecProject(const PlanNode& node);
  StatusOr<ResultSet> ExecHashJoin(const PlanNode& node);
  StatusOr<ResultSet> ExecAggregate(const PlanNode& node);
  StatusOr<ResultSet> ExecSort(const PlanNode& node);
  StatusOr<ResultSet> ExecLimit(const PlanNode& node);

  const Database* db_;
  ReadView view_;
  ExecStats stats_;
};

}  // namespace poly

#endif  // POLY_QUERY_EXECUTOR_H_
