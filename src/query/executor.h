#ifndef POLY_QUERY_EXECUTOR_H_
#define POLY_QUERY_EXECUTOR_H_

#include <functional>
#include <memory>

#include "common/exec_options.h"
#include "query/plan.h"
#include "query/result.h"
#include "resource/memory_budget.h"
#include "storage/database.h"
#include "storage/mvcc.h"

namespace poly {

class ThreadPool;

/// Counters exposed by the interpreted executor so experiments can report
/// rows scanned/materialized (E10/E12 measure exactly these). Parallel
/// execution accumulates per-worker partial counters and merges them, so
/// the totals match the serial path exactly.
struct ExecStats {
  uint64_t rows_scanned = 0;      ///< row versions visited in scans
  uint64_t rows_materialized = 0; ///< rows surviving scan predicates
  uint64_t id_range_scans = 0;    ///< scans answered via dictionary ID ranges
  uint64_t partitions_scanned = 0;
};

/// If the predicate is `($col <op> literal)` over a main-store column, the
/// sorted dictionary turns it into a value-ID range test — no value
/// materialization. Returns false if the shape does not match. Scans served
/// this way are the OLTP-shaped "point read" signal for the tiering heat
/// tracker; the interpreted scan executes the range, the compiled path
/// calls this only to classify the access.
bool TryIdRangePredicate(const ColumnTable& table, const Expr& pred, size_t* col_out,
                         uint64_t* lo_out, uint64_t* hi_out);
/// Same, against an already-pinned unified guard (the scan paths hold one
/// guard for stamps + values and classify through it).
bool TryIdRangePredicate(const ColumnTable::ReadGuard& guard, const Expr& pred,
                         size_t* col_out, uint64_t* lo_out, uint64_t* hi_out);

/// Vectorized-enough interpreted executor: every operator materializes its
/// result (simple, predictable, and a fair baseline for the compiled path of
/// E13). Reads run under snapshot-isolation `view`.
///
/// With ExecOptions::num_threads > 1 execution is morsel-driven: scans and
/// the scan-shaped operators (filter, project, aggregate input, hash-join
/// build and probe) split their input into fixed-size row-range morsels
/// dispatched over a ThreadPool. Per-worker fragments and stats are merged
/// in morsel order, so results, row order, and ExecStats are identical to
/// the serial path for any thread count and morsel size (floating-point
/// aggregate sums follow the fixed morsel-ordered reduction tree; see
/// DESIGN.md §5).
class Executor {
 public:
  /// Runs with the database's default execution options (serial unless
  /// Database::set_exec_options opted in) and its shared pool.
  Executor(const Database* db, ReadView view);
  /// Runs with explicit options (e.g. a parallel analytic session). When
  /// opts.pool is null and opts.num_threads > 1, a private pool with
  /// num_threads - 1 workers is created on first use.
  Executor(const Database* db, ReadView view, const ExecOptions& opts);
  ~Executor();

  StatusOr<ResultSet> Execute(const PlanPtr& plan);

  const ExecStats& stats() const { return stats_; }
  const ExecOptions& options() const { return opts_; }

  /// Span tree of the last traced Execute (null when opts().trace is off or
  /// nothing ran). The same tree is attached to the returned ResultSet.
  const OperatorSpan* trace() const { return trace_root_.get(); }

 private:
  /// Tracing wrapper around Dispatch: when opts_.trace is set, times the
  /// node (wall + coordinator-thread CPU), counts rows in/out, and hangs
  /// the span under the parent operator's span.
  StatusOr<ResultSet> Exec(const PlanNode& node);
  /// Budget hook on every operator boundary: grows the query reservation by
  /// the materialized output estimate; ResourceExhausted replaces the
  /// result when the budget says no. No-op without ExecOptions::budget.
  StatusOr<ResultSet> ChargeOutput(StatusOr<ResultSet> result);
  /// Extra charge for operator-internal state (join index, group table)
  /// that is not visible in any operator's output estimate.
  Status ChargeInternal(uint64_t bytes) { return reservation_.Grow(bytes); }
  StatusOr<ResultSet> Dispatch(const PlanNode& node);
  StatusOr<ResultSet> ExecScan(const PlanNode& node);
  Status ScanOneTable(const ColumnTable& table, const ExprPtr& predicate,
                      ResultSet* out);
  /// Scans rows [begin, end) through `guard` into `out`, counting into
  /// `stats` (which may be a worker-local partial). One morsel of a scan.
  /// The guard is immutable and shared by every morsel of one table scan:
  /// one pin covers stamps and values for the whole fan-out (DESIGN.md
  /// §12.5).
  void ScanMorsel(const ColumnTable::ReadGuard& guard, const ExprPtr& predicate,
                  bool use_range, size_t range_col, uint64_t lo, uint64_t hi,
                  uint64_t begin, uint64_t end, ResultSet* out,
                  ExecStats* stats) const;
  StatusOr<ResultSet> ExecFilter(const PlanNode& node);
  StatusOr<ResultSet> ExecProject(const PlanNode& node);
  StatusOr<ResultSet> ExecHashJoin(const PlanNode& node);
  StatusOr<ResultSet> ExecAggregate(const PlanNode& node);
  StatusOr<ResultSet> ExecSort(const PlanNode& node);
  StatusOr<ResultSet> ExecLimit(const PlanNode& node);
  /// Distributed-IR nodes (DESIGN.md §14), runnable single-node: kExchange
  /// passes through (movement is the cluster's job), the partial/final pair
  /// reproduces two-phase aggregation exactly as the shuffle consumers do.
  StatusOr<ResultSet> ExecExchange(const PlanNode& node);
  StatusOr<ResultSet> ExecPartialAggregate(const PlanNode& node);
  StatusOr<ResultSet> ExecFinalAggregate(const PlanNode& node);

  /// Pool backing parallel execution; null when serial.
  ThreadPool* pool();
  size_t morsel_rows() const {
    return opts_.morsel_rows ? opts_.morsel_rows : ExecOptions::kDefaultMorselRows;
  }
  /// Splits [0, n) into morsels, runs body(begin, end, &fragment) across
  /// the pool, and appends fragments to `out` in morsel order (serial
  /// inputs run as a single morsel straight into `out`).
  void MorselMap(size_t n,
                 const std::function<void(size_t, size_t, ResultSet*)>& body,
                 ResultSet* out);

  const Database* db_;
  ReadView view_;
  ExecOptions opts_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ExecStats stats_;
  std::shared_ptr<OperatorSpan> trace_root_;  ///< shared with the ResultSet
  OperatorSpan* current_span_ = nullptr;  ///< parent span during traced recursion
  /// Query-lifetime memory reservation against ExecOptions::budget.
  /// Cumulative across operators (intermediates stay charged until the
  /// query ends) — a deliberate over-approximation that bounds peak usage.
  /// Grown only on the coordinator thread; released at the end of Execute
  /// on every path, so budgets balance to zero query by query.
  resource::Reservation reservation_;
};

}  // namespace poly

#endif  // POLY_QUERY_EXECUTOR_H_
