# Empty dependencies file for example_stock_analytics.
# This may be replaced when dependencies are built.
