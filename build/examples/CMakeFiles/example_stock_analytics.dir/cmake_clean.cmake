file(REMOVE_RECURSE
  "CMakeFiles/example_stock_analytics.dir/stock_analytics.cpp.o"
  "CMakeFiles/example_stock_analytics.dir/stock_analytics.cpp.o.d"
  "example_stock_analytics"
  "example_stock_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stock_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
