# Empty compiler generated dependencies file for example_hurricane_risk.
# This may be replaced when dependencies are built.
