file(REMOVE_RECURSE
  "CMakeFiles/example_hurricane_risk.dir/hurricane_risk.cpp.o"
  "CMakeFiles/example_hurricane_risk.dir/hurricane_risk.cpp.o.d"
  "example_hurricane_risk"
  "example_hurricane_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hurricane_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
