# Empty dependencies file for example_dispenser_routing.
# This may be replaced when dependencies are built.
