file(REMOVE_RECURSE
  "CMakeFiles/example_dispenser_routing.dir/dispenser_routing.cpp.o"
  "CMakeFiles/example_dispenser_routing.dir/dispenser_routing.cpp.o.d"
  "example_dispenser_routing"
  "example_dispenser_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dispenser_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
