file(REMOVE_RECURSE
  "CMakeFiles/example_pipeline_evacuation.dir/pipeline_evacuation.cpp.o"
  "CMakeFiles/example_pipeline_evacuation.dir/pipeline_evacuation.cpp.o.d"
  "example_pipeline_evacuation"
  "example_pipeline_evacuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pipeline_evacuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
