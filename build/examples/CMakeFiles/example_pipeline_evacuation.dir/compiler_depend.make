# Empty compiler generated dependencies file for example_pipeline_evacuation.
# This may be replaced when dependencies are built.
