# Empty dependencies file for example_soe_cluster_tour.
# This may be replaced when dependencies are built.
