file(REMOVE_RECURSE
  "CMakeFiles/example_soe_cluster_tour.dir/soe_cluster_tour.cpp.o"
  "CMakeFiles/example_soe_cluster_tour.dir/soe_cluster_tour.cpp.o.d"
  "example_soe_cluster_tour"
  "example_soe_cluster_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_soe_cluster_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
