file(REMOVE_RECURSE
  "CMakeFiles/example_machine_maintenance.dir/machine_maintenance.cpp.o"
  "CMakeFiles/example_machine_maintenance.dir/machine_maintenance.cpp.o.d"
  "example_machine_maintenance"
  "example_machine_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_machine_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
