# Empty compiler generated dependencies file for example_machine_maintenance.
# This may be replaced when dependencies are built.
