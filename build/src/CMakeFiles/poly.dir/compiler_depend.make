# Empty compiler generated dependencies file for poly.
# This may be replaced when dependencies are built.
