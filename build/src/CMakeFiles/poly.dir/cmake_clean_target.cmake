file(REMOVE_RECURSE
  "libpoly.a"
)
