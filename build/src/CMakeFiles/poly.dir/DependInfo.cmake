
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aging/aging.cpp" "src/CMakeFiles/poly.dir/aging/aging.cpp.o" "gcc" "src/CMakeFiles/poly.dir/aging/aging.cpp.o.d"
  "/root/repo/src/aging/extended_storage.cpp" "src/CMakeFiles/poly.dir/aging/extended_storage.cpp.o" "gcc" "src/CMakeFiles/poly.dir/aging/extended_storage.cpp.o.d"
  "/root/repo/src/bfl/business_functions.cpp" "src/CMakeFiles/poly.dir/bfl/business_functions.cpp.o" "gcc" "src/CMakeFiles/poly.dir/bfl/business_functions.cpp.o.d"
  "/root/repo/src/common/arena.cpp" "src/CMakeFiles/poly.dir/common/arena.cpp.o" "gcc" "src/CMakeFiles/poly.dir/common/arena.cpp.o.d"
  "/root/repo/src/common/bitpack.cpp" "src/CMakeFiles/poly.dir/common/bitpack.cpp.o" "gcc" "src/CMakeFiles/poly.dir/common/bitpack.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/CMakeFiles/poly.dir/common/random.cpp.o" "gcc" "src/CMakeFiles/poly.dir/common/random.cpp.o.d"
  "/root/repo/src/common/serializer.cpp" "src/CMakeFiles/poly.dir/common/serializer.cpp.o" "gcc" "src/CMakeFiles/poly.dir/common/serializer.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/poly.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/poly.dir/common/status.cpp.o.d"
  "/root/repo/src/common/string_util.cpp" "src/CMakeFiles/poly.dir/common/string_util.cpp.o" "gcc" "src/CMakeFiles/poly.dir/common/string_util.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/poly.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/poly.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/docstore/doc_query.cpp" "src/CMakeFiles/poly.dir/docstore/doc_query.cpp.o" "gcc" "src/CMakeFiles/poly.dir/docstore/doc_query.cpp.o.d"
  "/root/repo/src/docstore/flexible_table.cpp" "src/CMakeFiles/poly.dir/docstore/flexible_table.cpp.o" "gcc" "src/CMakeFiles/poly.dir/docstore/flexible_table.cpp.o.d"
  "/root/repo/src/docstore/json.cpp" "src/CMakeFiles/poly.dir/docstore/json.cpp.o" "gcc" "src/CMakeFiles/poly.dir/docstore/json.cpp.o.d"
  "/root/repo/src/docstore/object_index.cpp" "src/CMakeFiles/poly.dir/docstore/object_index.cpp.o" "gcc" "src/CMakeFiles/poly.dir/docstore/object_index.cpp.o.d"
  "/root/repo/src/engines/geo/geo.cpp" "src/CMakeFiles/poly.dir/engines/geo/geo.cpp.o" "gcc" "src/CMakeFiles/poly.dir/engines/geo/geo.cpp.o.d"
  "/root/repo/src/engines/geo/geo_index.cpp" "src/CMakeFiles/poly.dir/engines/geo/geo_index.cpp.o" "gcc" "src/CMakeFiles/poly.dir/engines/geo/geo_index.cpp.o.d"
  "/root/repo/src/engines/graph/graph_view.cpp" "src/CMakeFiles/poly.dir/engines/graph/graph_view.cpp.o" "gcc" "src/CMakeFiles/poly.dir/engines/graph/graph_view.cpp.o.d"
  "/root/repo/src/engines/graph/hierarchy.cpp" "src/CMakeFiles/poly.dir/engines/graph/hierarchy.cpp.o" "gcc" "src/CMakeFiles/poly.dir/engines/graph/hierarchy.cpp.o.d"
  "/root/repo/src/engines/planning/planning.cpp" "src/CMakeFiles/poly.dir/engines/planning/planning.cpp.o" "gcc" "src/CMakeFiles/poly.dir/engines/planning/planning.cpp.o.d"
  "/root/repo/src/engines/predictive/apriori.cpp" "src/CMakeFiles/poly.dir/engines/predictive/apriori.cpp.o" "gcc" "src/CMakeFiles/poly.dir/engines/predictive/apriori.cpp.o.d"
  "/root/repo/src/engines/predictive/forecast.cpp" "src/CMakeFiles/poly.dir/engines/predictive/forecast.cpp.o" "gcc" "src/CMakeFiles/poly.dir/engines/predictive/forecast.cpp.o.d"
  "/root/repo/src/engines/predictive/kmeans.cpp" "src/CMakeFiles/poly.dir/engines/predictive/kmeans.cpp.o" "gcc" "src/CMakeFiles/poly.dir/engines/predictive/kmeans.cpp.o.d"
  "/root/repo/src/engines/scientific/matrix.cpp" "src/CMakeFiles/poly.dir/engines/scientific/matrix.cpp.o" "gcc" "src/CMakeFiles/poly.dir/engines/scientific/matrix.cpp.o.d"
  "/root/repo/src/engines/text/inverted_index.cpp" "src/CMakeFiles/poly.dir/engines/text/inverted_index.cpp.o" "gcc" "src/CMakeFiles/poly.dir/engines/text/inverted_index.cpp.o.d"
  "/root/repo/src/engines/text/text_analysis.cpp" "src/CMakeFiles/poly.dir/engines/text/text_analysis.cpp.o" "gcc" "src/CMakeFiles/poly.dir/engines/text/text_analysis.cpp.o.d"
  "/root/repo/src/engines/text/text_engine.cpp" "src/CMakeFiles/poly.dir/engines/text/text_engine.cpp.o" "gcc" "src/CMakeFiles/poly.dir/engines/text/text_engine.cpp.o.d"
  "/root/repo/src/engines/text/tokenizer.cpp" "src/CMakeFiles/poly.dir/engines/text/tokenizer.cpp.o" "gcc" "src/CMakeFiles/poly.dir/engines/text/tokenizer.cpp.o.d"
  "/root/repo/src/engines/timeseries/ts_codec.cpp" "src/CMakeFiles/poly.dir/engines/timeseries/ts_codec.cpp.o" "gcc" "src/CMakeFiles/poly.dir/engines/timeseries/ts_codec.cpp.o.d"
  "/root/repo/src/engines/timeseries/ts_ops.cpp" "src/CMakeFiles/poly.dir/engines/timeseries/ts_ops.cpp.o" "gcc" "src/CMakeFiles/poly.dir/engines/timeseries/ts_ops.cpp.o.d"
  "/root/repo/src/federation/federation.cpp" "src/CMakeFiles/poly.dir/federation/federation.cpp.o" "gcc" "src/CMakeFiles/poly.dir/federation/federation.cpp.o.d"
  "/root/repo/src/hadoop/dfs.cpp" "src/CMakeFiles/poly.dir/hadoop/dfs.cpp.o" "gcc" "src/CMakeFiles/poly.dir/hadoop/dfs.cpp.o.d"
  "/root/repo/src/hadoop/mapreduce.cpp" "src/CMakeFiles/poly.dir/hadoop/mapreduce.cpp.o" "gcc" "src/CMakeFiles/poly.dir/hadoop/mapreduce.cpp.o.d"
  "/root/repo/src/hadoop/table_connector.cpp" "src/CMakeFiles/poly.dir/hadoop/table_connector.cpp.o" "gcc" "src/CMakeFiles/poly.dir/hadoop/table_connector.cpp.o.d"
  "/root/repo/src/query/compiled.cpp" "src/CMakeFiles/poly.dir/query/compiled.cpp.o" "gcc" "src/CMakeFiles/poly.dir/query/compiled.cpp.o.d"
  "/root/repo/src/query/executor.cpp" "src/CMakeFiles/poly.dir/query/executor.cpp.o" "gcc" "src/CMakeFiles/poly.dir/query/executor.cpp.o.d"
  "/root/repo/src/query/expr.cpp" "src/CMakeFiles/poly.dir/query/expr.cpp.o" "gcc" "src/CMakeFiles/poly.dir/query/expr.cpp.o.d"
  "/root/repo/src/query/optimizer.cpp" "src/CMakeFiles/poly.dir/query/optimizer.cpp.o" "gcc" "src/CMakeFiles/poly.dir/query/optimizer.cpp.o.d"
  "/root/repo/src/query/plan.cpp" "src/CMakeFiles/poly.dir/query/plan.cpp.o" "gcc" "src/CMakeFiles/poly.dir/query/plan.cpp.o.d"
  "/root/repo/src/query/sql_parser.cpp" "src/CMakeFiles/poly.dir/query/sql_parser.cpp.o" "gcc" "src/CMakeFiles/poly.dir/query/sql_parser.cpp.o.d"
  "/root/repo/src/soe/cluster.cpp" "src/CMakeFiles/poly.dir/soe/cluster.cpp.o" "gcc" "src/CMakeFiles/poly.dir/soe/cluster.cpp.o.d"
  "/root/repo/src/soe/log_record.cpp" "src/CMakeFiles/poly.dir/soe/log_record.cpp.o" "gcc" "src/CMakeFiles/poly.dir/soe/log_record.cpp.o.d"
  "/root/repo/src/soe/node.cpp" "src/CMakeFiles/poly.dir/soe/node.cpp.o" "gcc" "src/CMakeFiles/poly.dir/soe/node.cpp.o.d"
  "/root/repo/src/soe/partition.cpp" "src/CMakeFiles/poly.dir/soe/partition.cpp.o" "gcc" "src/CMakeFiles/poly.dir/soe/partition.cpp.o.d"
  "/root/repo/src/soe/rdd.cpp" "src/CMakeFiles/poly.dir/soe/rdd.cpp.o" "gcc" "src/CMakeFiles/poly.dir/soe/rdd.cpp.o.d"
  "/root/repo/src/soe/services.cpp" "src/CMakeFiles/poly.dir/soe/services.cpp.o" "gcc" "src/CMakeFiles/poly.dir/soe/services.cpp.o.d"
  "/root/repo/src/soe/shared_log.cpp" "src/CMakeFiles/poly.dir/soe/shared_log.cpp.o" "gcc" "src/CMakeFiles/poly.dir/soe/shared_log.cpp.o.d"
  "/root/repo/src/soe/sql_bridge.cpp" "src/CMakeFiles/poly.dir/soe/sql_bridge.cpp.o" "gcc" "src/CMakeFiles/poly.dir/soe/sql_bridge.cpp.o.d"
  "/root/repo/src/storage/backup.cpp" "src/CMakeFiles/poly.dir/storage/backup.cpp.o" "gcc" "src/CMakeFiles/poly.dir/storage/backup.cpp.o.d"
  "/root/repo/src/storage/column.cpp" "src/CMakeFiles/poly.dir/storage/column.cpp.o" "gcc" "src/CMakeFiles/poly.dir/storage/column.cpp.o.d"
  "/root/repo/src/storage/column_table.cpp" "src/CMakeFiles/poly.dir/storage/column_table.cpp.o" "gcc" "src/CMakeFiles/poly.dir/storage/column_table.cpp.o.d"
  "/root/repo/src/storage/database.cpp" "src/CMakeFiles/poly.dir/storage/database.cpp.o" "gcc" "src/CMakeFiles/poly.dir/storage/database.cpp.o.d"
  "/root/repo/src/storage/dictionary.cpp" "src/CMakeFiles/poly.dir/storage/dictionary.cpp.o" "gcc" "src/CMakeFiles/poly.dir/storage/dictionary.cpp.o.d"
  "/root/repo/src/storage/row_table.cpp" "src/CMakeFiles/poly.dir/storage/row_table.cpp.o" "gcc" "src/CMakeFiles/poly.dir/storage/row_table.cpp.o.d"
  "/root/repo/src/streaming/streaming.cpp" "src/CMakeFiles/poly.dir/streaming/streaming.cpp.o" "gcc" "src/CMakeFiles/poly.dir/streaming/streaming.cpp.o.d"
  "/root/repo/src/txn/redo_log.cpp" "src/CMakeFiles/poly.dir/txn/redo_log.cpp.o" "gcc" "src/CMakeFiles/poly.dir/txn/redo_log.cpp.o.d"
  "/root/repo/src/txn/transaction_manager.cpp" "src/CMakeFiles/poly.dir/txn/transaction_manager.cpp.o" "gcc" "src/CMakeFiles/poly.dir/txn/transaction_manager.cpp.o.d"
  "/root/repo/src/types/schema.cpp" "src/CMakeFiles/poly.dir/types/schema.cpp.o" "gcc" "src/CMakeFiles/poly.dir/types/schema.cpp.o.d"
  "/root/repo/src/types/value.cpp" "src/CMakeFiles/poly.dir/types/value.cpp.o" "gcc" "src/CMakeFiles/poly.dir/types/value.cpp.o.d"
  "/root/repo/src/types/value_serde.cpp" "src/CMakeFiles/poly.dir/types/value_serde.cpp.o" "gcc" "src/CMakeFiles/poly.dir/types/value_serde.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
