
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aging_test.cpp" "tests/CMakeFiles/poly_tests.dir/aging_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/aging_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/poly_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/docstore_test.cpp" "tests/CMakeFiles/poly_tests.dir/docstore_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/docstore_test.cpp.o.d"
  "/root/repo/tests/federation_test.cpp" "tests/CMakeFiles/poly_tests.dir/federation_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/federation_test.cpp.o.d"
  "/root/repo/tests/geo_test.cpp" "tests/CMakeFiles/poly_tests.dir/geo_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/geo_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/poly_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/hadoop_test.cpp" "tests/CMakeFiles/poly_tests.dir/hadoop_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/hadoop_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/poly_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/planning_test.cpp" "tests/CMakeFiles/poly_tests.dir/planning_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/planning_test.cpp.o.d"
  "/root/repo/tests/predictive_test.cpp" "tests/CMakeFiles/poly_tests.dir/predictive_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/predictive_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/poly_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/query_test.cpp" "tests/CMakeFiles/poly_tests.dir/query_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/query_test.cpp.o.d"
  "/root/repo/tests/rdd_backup_test.cpp" "tests/CMakeFiles/poly_tests.dir/rdd_backup_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/rdd_backup_test.cpp.o.d"
  "/root/repo/tests/scientific_test.cpp" "tests/CMakeFiles/poly_tests.dir/scientific_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/scientific_test.cpp.o.d"
  "/root/repo/tests/soe_test.cpp" "tests/CMakeFiles/poly_tests.dir/soe_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/soe_test.cpp.o.d"
  "/root/repo/tests/sql_bridge_test.cpp" "tests/CMakeFiles/poly_tests.dir/sql_bridge_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/sql_bridge_test.cpp.o.d"
  "/root/repo/tests/sql_parser_test.cpp" "tests/CMakeFiles/poly_tests.dir/sql_parser_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/sql_parser_test.cpp.o.d"
  "/root/repo/tests/storage_test.cpp" "tests/CMakeFiles/poly_tests.dir/storage_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/storage_test.cpp.o.d"
  "/root/repo/tests/streaming_test.cpp" "tests/CMakeFiles/poly_tests.dir/streaming_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/streaming_test.cpp.o.d"
  "/root/repo/tests/text_test.cpp" "tests/CMakeFiles/poly_tests.dir/text_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/text_test.cpp.o.d"
  "/root/repo/tests/timeseries_test.cpp" "tests/CMakeFiles/poly_tests.dir/timeseries_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/timeseries_test.cpp.o.d"
  "/root/repo/tests/txn_test.cpp" "tests/CMakeFiles/poly_tests.dir/txn_test.cpp.o" "gcc" "tests/CMakeFiles/poly_tests.dir/txn_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/poly.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
