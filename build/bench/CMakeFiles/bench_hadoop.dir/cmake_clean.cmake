file(REMOVE_RECURSE
  "CMakeFiles/bench_hadoop.dir/bench_hadoop.cpp.o"
  "CMakeFiles/bench_hadoop.dir/bench_hadoop.cpp.o.d"
  "bench_hadoop"
  "bench_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
