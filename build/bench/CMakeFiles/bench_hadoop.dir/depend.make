# Empty dependencies file for bench_hadoop.
# This may be replaced when dependencies are built.
