# Empty dependencies file for bench_docstore.
# This may be replaced when dependencies are built.
