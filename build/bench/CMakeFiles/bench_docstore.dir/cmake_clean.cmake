file(REMOVE_RECURSE
  "CMakeFiles/bench_docstore.dir/bench_docstore.cpp.o"
  "CMakeFiles/bench_docstore.dir/bench_docstore.cpp.o.d"
  "bench_docstore"
  "bench_docstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_docstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
