file(REMOVE_RECURSE
  "CMakeFiles/bench_soe.dir/bench_soe.cpp.o"
  "CMakeFiles/bench_soe.dir/bench_soe.cpp.o.d"
  "bench_soe"
  "bench_soe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
