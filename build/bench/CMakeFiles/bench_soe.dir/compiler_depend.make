# Empty compiler generated dependencies file for bench_soe.
# This may be replaced when dependencies are built.
