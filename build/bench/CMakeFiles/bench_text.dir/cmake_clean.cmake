file(REMOVE_RECURSE
  "CMakeFiles/bench_text.dir/bench_text.cpp.o"
  "CMakeFiles/bench_text.dir/bench_text.cpp.o.d"
  "bench_text"
  "bench_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
