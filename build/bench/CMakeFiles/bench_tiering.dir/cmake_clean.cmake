file(REMOVE_RECURSE
  "CMakeFiles/bench_tiering.dir/bench_tiering.cpp.o"
  "CMakeFiles/bench_tiering.dir/bench_tiering.cpp.o.d"
  "bench_tiering"
  "bench_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
