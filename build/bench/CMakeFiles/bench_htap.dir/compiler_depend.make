# Empty compiler generated dependencies file for bench_htap.
# This may be replaced when dependencies are built.
