file(REMOVE_RECURSE
  "CMakeFiles/bench_htap.dir/bench_htap.cpp.o"
  "CMakeFiles/bench_htap.dir/bench_htap.cpp.o.d"
  "bench_htap"
  "bench_htap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_htap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
