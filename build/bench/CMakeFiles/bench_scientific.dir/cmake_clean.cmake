file(REMOVE_RECURSE
  "CMakeFiles/bench_scientific.dir/bench_scientific.cpp.o"
  "CMakeFiles/bench_scientific.dir/bench_scientific.cpp.o.d"
  "bench_scientific"
  "bench_scientific.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scientific.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
