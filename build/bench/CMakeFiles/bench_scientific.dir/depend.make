# Empty dependencies file for bench_scientific.
# This may be replaced when dependencies are built.
