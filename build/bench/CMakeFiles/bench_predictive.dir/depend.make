# Empty dependencies file for bench_predictive.
# This may be replaced when dependencies are built.
