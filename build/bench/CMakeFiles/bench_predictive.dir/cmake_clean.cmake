file(REMOVE_RECURSE
  "CMakeFiles/bench_predictive.dir/bench_predictive.cpp.o"
  "CMakeFiles/bench_predictive.dir/bench_predictive.cpp.o.d"
  "bench_predictive"
  "bench_predictive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predictive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
